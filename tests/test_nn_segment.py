"""Index/segment primitives (repro.nn take/index_add/segment_*) — ISSUE 7.

Finite-difference gradient checks run in float64 (``nn.dtype_scope``)
so central differences resolve well below the assertion tolerance.
"""

import numpy as np
import pytest

from repro import nn
from repro.nn import (
    Tensor,
    index_add,
    no_grad,
    segment_mean,
    segment_softmax,
    segment_sum,
    take,
)


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


@pytest.fixture(autouse=True)
def float64_scope():
    with nn.dtype_scope(np.float64):
        yield


RNG = np.random.default_rng(7)


class TestTake:
    def test_forward_gathers_rows(self):
        x = Tensor(np.arange(12.0).reshape(4, 3))
        idx = np.array([2, 0, 2])
        out = take(x, idx)
        assert np.array_equal(out.numpy(), x.numpy()[idx])

    def test_grad_accumulates_repeated_indices(self):
        x = Tensor(RNG.normal(size=(4, 3)), requires_grad=True)
        idx = np.array([1, 1, 3])
        take(x, idx).sum().backward()
        expected = np.zeros((4, 3))
        np.add.at(expected, idx, np.ones((3, 3)))
        assert np.array_equal(x.grad, expected)

    def test_grad_matches_finite_differences(self):
        x0 = RNG.normal(size=(5, 2))
        idx = np.array([4, 0, 0, 2])
        w = RNG.normal(size=(4, 2))  # non-uniform upstream weighting

        def fn(arr):
            return float((np.asarray(arr)[idx] * w).sum())

        x = Tensor(x0.copy(), requires_grad=True)
        (take(x, idx) * Tensor(w)).sum().backward()
        assert np.allclose(x.grad, numeric_grad(fn, x0.copy()), atol=1e-6)


class TestIndexAdd:
    def test_forward_scatter_adds_without_mutating_base(self):
        base = Tensor(np.zeros((3, 2)))
        values = Tensor(np.ones((4, 2)))
        idx = np.array([0, 2, 2, 0])
        out = index_add(base, idx, values)
        assert np.array_equal(out.numpy(), [[2, 2], [0, 0], [2, 2]])
        assert np.array_equal(base.numpy(), np.zeros((3, 2)))  # untouched

    def test_grads_flow_to_both_operands(self):
        base0 = RNG.normal(size=(3, 2))
        values0 = RNG.normal(size=(4, 2))
        idx = np.array([1, 1, 0, 2])
        w = RNG.normal(size=(3, 2))

        base = Tensor(base0.copy(), requires_grad=True)
        values = Tensor(values0.copy(), requires_grad=True)
        (index_add(base, idx, values) * Tensor(w)).sum().backward()

        def fn_base(arr):
            out = np.asarray(arr).copy()
            np.add.at(out, idx, values0)
            return float((out * w).sum())

        def fn_values(arr):
            out = base0.copy()
            np.add.at(out, idx, np.asarray(arr))
            return float((out * w).sum())

        assert np.allclose(base.grad, numeric_grad(fn_base, base0.copy()), atol=1e-6)
        assert np.allclose(values.grad, numeric_grad(fn_values, values0.copy()), atol=1e-6)

    def test_rejects_mismatched_indices(self):
        with pytest.raises(ValueError):
            index_add(Tensor(np.zeros((3, 2))), np.array([0, 1]), Tensor(np.ones((3, 2))))


class TestSegmentSum:
    def test_forward_and_empty_segment(self):
        x = Tensor(np.arange(8.0).reshape(4, 2))
        out = segment_sum(x, np.array([0, 0, 2, 2]), 3)
        assert np.array_equal(out.numpy(), [[2, 4], [0, 0], [10, 12]])

    def test_grad_matches_finite_differences(self):
        x0 = RNG.normal(size=(6, 3))
        ids = np.array([0, 1, 1, 0, 2, 2])
        w = RNG.normal(size=(3, 3))

        def fn(arr):
            out = np.zeros((3, 3))
            np.add.at(out, ids, np.asarray(arr))
            return float((out * w).sum())

        x = Tensor(x0.copy(), requires_grad=True)
        (segment_sum(x, ids, 3) * Tensor(w)).sum().backward()
        assert np.allclose(x.grad, numeric_grad(fn, x0.copy()), atol=1e-6)

    def test_rejects_out_of_range_ids(self):
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((2, 2))), np.array([0, 3]), 2)
        with pytest.raises(ValueError):
            segment_sum(Tensor(np.ones((2, 2))), np.array([0, -1]), 2)


class TestSegmentMean:
    def test_forward_matches_per_segment_mean(self):
        x0 = RNG.normal(size=(5, 2))
        ids = np.array([0, 0, 0, 2, 2])
        out = segment_mean(Tensor(x0), ids, 3).numpy()
        assert np.allclose(out[0], x0[:3].mean(axis=0))
        assert np.array_equal(out[1], np.zeros(2))  # empty segment -> zeros
        assert np.allclose(out[2], x0[3:].mean(axis=0))

    def test_grad_matches_finite_differences(self):
        x0 = RNG.normal(size=(5, 2))
        ids = np.array([0, 1, 1, 1, 0])
        w = RNG.normal(size=(2, 2))

        def fn(arr):
            arr = np.asarray(arr)
            out = np.stack([arr[ids == s].mean(axis=0) for s in range(2)])
            return float((out * w).sum())

        x = Tensor(x0.copy(), requires_grad=True)
        (segment_mean(x, ids, 2) * Tensor(w)).sum().backward()
        assert np.allclose(x.grad, numeric_grad(fn, x0.copy()), atol=1e-6)


class TestSegmentSoftmax:
    def test_sums_to_one_per_segment(self):
        scores = Tensor(RNG.normal(size=8))
        ids = np.array([0, 0, 1, 1, 1, 2, 2, 2])
        p = segment_softmax(scores, ids, 3).numpy()
        for s in range(3):
            assert np.isclose(p[ids == s].sum(), 1.0)

    def test_matches_reference_softmax(self):
        scores = RNG.normal(size=6) * 5.0
        ids = np.array([0, 1, 0, 1, 0, 1])
        p = segment_softmax(Tensor(scores), ids, 2).numpy()
        for s in range(2):
            seg = scores[ids == s]
            ref = np.exp(seg - seg.max())
            ref /= ref.sum()
            assert np.allclose(p[ids == s], ref)

    def test_grad_matches_finite_differences(self):
        x0 = RNG.normal(size=7)
        ids = np.array([0, 0, 0, 1, 1, 2, 2])
        w = RNG.normal(size=7)

        def fn(arr):
            arr = np.asarray(arr)
            out = np.empty_like(arr)
            for s in range(3):
                seg = arr[ids == s]
                e = np.exp(seg - seg.max())
                out[ids == s] = e / e.sum()
            return float((out * w).sum())

        x = Tensor(x0.copy(), requires_grad=True)
        (segment_softmax(x, ids, 3) * Tensor(w)).sum().backward()
        assert np.allclose(x.grad, numeric_grad(fn, x0.copy()), atol=1e-6)


class TestGradModeAndDtype:
    def test_no_grad_records_no_tape(self):
        x = Tensor(np.ones((4, 2)), requires_grad=True)
        ids = np.array([0, 0, 1, 1])
        with no_grad():
            for out in (
                take(x, ids),
                index_add(x, ids, x),
                segment_sum(x, ids, 2),
                segment_mean(x, ids, 2),
                segment_softmax(Tensor(np.ones(4), requires_grad=True), ids, 2),
            ):
                assert not out.requires_grad
                assert not out._parents

    def test_primitives_preserve_input_dtype(self):
        ids = np.array([0, 1, 0])
        for dtype in (np.float32, np.float64):
            with nn.dtype_scope(dtype):
                x = Tensor(np.ones((3, 2), dtype=dtype))
                assert take(x, ids).numpy().dtype == dtype
                assert segment_sum(x, ids, 2).numpy().dtype == dtype
                assert segment_mean(x, ids, 2).numpy().dtype == dtype
                assert segment_softmax(Tensor(np.ones(3, dtype=dtype)), ids, 2).numpy().dtype == dtype
