"""Unit and property tests for the autograd engine (repro.nn.tensor)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn.tensor import Tensor, _unbroadcast


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central finite differences of a scalar-valued fn at x."""
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        hi = fn(x)
        flat[i] = orig - eps
        lo = fn(x)
        flat[i] = orig
        gflat[i] = (hi - lo) / (2 * eps)
    return grad


class TestBasicOps:
    def test_add_broadcast_grad(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.ones(4), requires_grad=True)
        (a + b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 4)))
        assert np.allclose(b.grad, np.full(4, 3.0))

    def test_mul_grad(self):
        a = Tensor([2.0, 3.0], requires_grad=True)
        b = Tensor([5.0, 7.0], requires_grad=True)
        (a * b).sum().backward()
        assert np.allclose(a.grad, [5.0, 7.0])
        assert np.allclose(b.grad, [2.0, 3.0])

    def test_sub_and_neg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        out = (-(a - 3.0)).sum()
        out.backward()
        assert np.allclose(a.grad, [-1.0, -1.0])

    def test_div_grad(self):
        a = Tensor([4.0], requires_grad=True)
        b = Tensor([2.0], requires_grad=True)
        (a / b).backward()
        assert np.allclose(a.grad, [0.5])
        assert np.allclose(b.grad, [-1.0])

    def test_pow_grad(self):
        a = Tensor([3.0], requires_grad=True)
        (a ** 2).backward()
        assert np.allclose(a.grad, [6.0])

    def test_rsub_rdiv(self):
        a = Tensor([2.0], requires_grad=True)
        (10.0 - a).backward()
        assert np.allclose(a.grad, [-1.0])
        a2 = Tensor([2.0], requires_grad=True)
        (10.0 / a2).backward()
        assert np.allclose(a2.grad, [-2.5])

    def test_matmul_2d(self):
        rng = np.random.default_rng(0)
        a_data = rng.normal(size=(3, 4))
        b_data = rng.normal(size=(4, 5))
        a = Tensor(a_data, requires_grad=True)
        b = Tensor(b_data, requires_grad=True)
        (a @ b).sum().backward()
        assert np.allclose(a.grad, np.ones((3, 5)) @ b_data.T)
        assert np.allclose(b.grad, a_data.T @ np.ones((3, 5)))

    def test_matmul_vec(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([[1.0, 0.0], [0.0, 1.0]], requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad is not None and b.grad is not None

    def test_grad_accumulates_over_reuse(self):
        a = Tensor([1.0], requires_grad=True)
        (a * 2 + a * 3).backward()
        assert np.allclose(a.grad, [5.0])

    def test_no_grad_tracking_when_not_required(self):
        a = Tensor([1.0])
        out = a * 2
        assert not out.requires_grad
        with pytest.raises(RuntimeError):
            out.backward()

    def test_backward_nonscalar_requires_grad_arg(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(RuntimeError):
            (a * 2).backward()

    def test_detach_cuts_graph(self):
        a = Tensor([1.0], requires_grad=True)
        d = (a * 2).detach()
        assert not d.requires_grad


class TestActivations:
    @pytest.mark.parametrize("name", ["relu", "tanh", "sigmoid", "exp", "abs"])
    def test_numeric_gradcheck(self, name):
        rng = np.random.default_rng(42)
        x = rng.normal(size=(4, 3)) + 0.1  # avoid relu/abs kink at 0
        t = Tensor(x.copy(), requires_grad=True)
        out = getattr(t, name)().sum()
        out.backward()

        def f(arr):
            tt = Tensor(arr)
            return float(getattr(tt, name)().sum().item())

        ng = numeric_grad(f, x.copy())
        assert np.allclose(t.grad, ng, atol=1e-4)

    def test_log_grad(self):
        x = np.array([0.5, 1.5, 2.5])
        t = Tensor(x, requires_grad=True)
        t.log().sum().backward()
        assert np.allclose(t.grad, 1.0 / x)

    def test_clip_grad_masks_out_of_range(self):
        t = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        t.clip(-1.0, 1.0).sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0, 0.0])


class TestReductionsAndShapes:
    def test_mean_axis(self):
        t = Tensor(np.arange(12.0).reshape(3, 4), requires_grad=True)
        t.mean(axis=0).sum().backward()
        assert np.allclose(t.grad, np.full((3, 4), 1 / 3))

    def test_sum_keepdims(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        t.sum(axis=1, keepdims=True).sum().backward()
        assert np.allclose(t.grad, np.ones((2, 3)))

    def test_max_grad_splits_ties(self):
        t = Tensor([1.0, 3.0, 3.0], requires_grad=True)
        t.max().backward()
        assert np.allclose(t.grad, [0.0, 0.5, 0.5])

    def test_max_axis(self):
        t = Tensor([[1.0, 5.0], [7.0, 2.0]], requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad, [[0, 1], [1, 0]])

    def test_reshape_transpose_roundtrip(self):
        t = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        t.T.reshape(2, 3).sum().backward()
        assert np.allclose(t.grad, np.ones((2, 3)))

    def test_getitem_grad(self):
        t = Tensor(np.arange(10.0), requires_grad=True)
        t[2:5].sum().backward()
        expected = np.zeros(10)
        expected[2:5] = 1
        assert np.allclose(t.grad, expected)

    def test_getitem_fancy_repeated_index_accumulates(self):
        t = Tensor(np.arange(4.0), requires_grad=True)
        idx = np.array([1, 1, 2])
        t[idx].sum().backward()
        assert np.allclose(t.grad, [0, 2, 1, 0])


class TestFreeFunctions:
    def test_concatenate_grad_routing(self):
        a = Tensor(np.ones((2, 2)), requires_grad=True)
        b = Tensor(np.ones((3, 2)), requires_grad=True)
        out = nn.concatenate([a, b], axis=0)
        (out * np.arange(10.0).reshape(5, 2)).sum().backward()
        assert np.allclose(a.grad, [[0, 1], [2, 3]])
        assert np.allclose(b.grad, [[4, 5], [6, 7], [8, 9]])

    def test_stack_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        nn.stack([a, b]).sum().backward()
        assert np.allclose(a.grad, [1, 1])
        assert np.allclose(b.grad, [1, 1])

    def test_where_grad(self):
        a = Tensor([1.0, 2.0], requires_grad=True)
        b = Tensor([3.0, 4.0], requires_grad=True)
        nn.where(np.array([True, False]), a, b).sum().backward()
        assert np.allclose(a.grad, [1, 0])
        assert np.allclose(b.grad, [0, 1])

    def test_log_softmax_rows_normalize(self):
        x = Tensor(np.random.default_rng(1).normal(size=(4, 7)))
        probs = nn.softmax(x).numpy()
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_log_softmax_stability_large_values(self):
        x = Tensor(np.array([[1000.0, 1000.0, -1000.0]]))
        lp = nn.log_softmax(x).numpy()
        assert np.isfinite(lp).all()

    def test_gather(self):
        x = Tensor(np.arange(6.0).reshape(2, 3), requires_grad=True)
        out = nn.gather(x, np.array([2, 0]))
        assert np.allclose(out.numpy(), [2.0, 3.0])
        out.sum().backward()
        assert np.allclose(x.grad, [[0, 0, 1], [1, 0, 0]])

    def test_zeros_ones(self):
        assert nn.zeros((2, 2)).numpy().sum() == 0
        assert nn.ones((2, 2)).numpy().sum() == 4


class TestUnbroadcast:
    @given(
        rows=st.integers(min_value=1, max_value=5),
        cols=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_unbroadcast_inverts_broadcast(self, rows, cols):
        base = np.ones((1, cols))
        grad = np.ones((rows, cols))
        out = _unbroadcast(grad, base.shape)
        assert out.shape == base.shape
        assert np.allclose(out, rows)

    def test_unbroadcast_extra_leading_dims(self):
        grad = np.ones((4, 3, 2))
        out = _unbroadcast(grad, (2,))
        assert out.shape == (2,)
        assert np.allclose(out, 12.0)


class TestEndToEndGradcheck:
    """Composite-expression gradient checks against finite differences."""

    def test_small_mlp_like_expression(self):
        rng = np.random.default_rng(7)
        x_data = rng.normal(size=(5, 3))
        w_data = rng.normal(size=(3, 4))

        def f(w_arr):
            x = Tensor(x_data)
            w = Tensor(w_arr)
            h = (x @ w).tanh()
            return float((h * h).mean().item())

        w = Tensor(w_data.copy(), requires_grad=True)
        x = Tensor(x_data)
        h = (x @ w).tanh()
        (h * h).mean().backward()
        ng = numeric_grad(f, w_data.copy())
        assert np.allclose(w.grad, ng, atol=1e-5)

    def test_log_softmax_gradcheck(self):
        rng = np.random.default_rng(8)
        x_data = rng.normal(size=(3, 5))

        def f(arr):
            return float(nn.log_softmax(Tensor(arr))[np.arange(3), [0, 2, 4]].sum().item())

        x = Tensor(x_data.copy(), requires_grad=True)
        nn.log_softmax(x)[np.arange(3), [0, 2, 4]].sum().backward()
        ng = numeric_grad(f, x_data.copy())
        assert np.allclose(x.grad, ng, atol=1e-5)
