"""Tests for the ``repro.obs`` telemetry layer.

Covers the four contracts the subsystem makes:

* **strict no-op when disabled** — nothing recorded, nothing allocated;
* **numeric fidelity** — the pure-python percentile matches the numpy
  reference;
* **span semantics** — nesting, re-entrancy, exception safety;
* **aggregation** — worker registries merge into the parent so serial
  and process runs of the same workload report identical counters.
"""

import json
import logging

import numpy as np
import pytest

from repro import obs
from repro.circuits import get_circuit
from repro.engine import ArtifactCache, Executor, SweepSpec, run_sweep
from repro.floorplan import FloorplanEnv
from repro.floorplan.vecenv import ProcessVecEnv

#: One tiny fixed sweep reused by the aggregation tests: 2 methods x 1
#: circuit x 2 seeds, SA/GA budgets cut to tens of milliseconds.
SWEEP = SweepSpec(
    methods=["sa", "ga"],
    circuits=["ota_small"],
    seeds=[0, 1],
    config={"moves_per_temperature": 4, "generations": 2, "population": 6},
)


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with telemetry disabled and empty."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


def _first_valid_action(observation) -> int:
    return int(np.nonzero(observation.action_mask)[0][0])


class TestDisabledNoOp:
    def test_span_and_timer_return_shared_singletons(self):
        # No per-call allocation on the disabled path: every call hands
        # back the same null object.
        assert obs.span("a") is obs.span("b")
        assert obs.span("a") is obs.NULL_SPAN
        assert obs.timer("a") is obs.timer("b")
        assert obs.timer("a") is obs.NULL_TIMER

    def test_helpers_record_nothing(self):
        obs.inc("c")
        obs.observe("h", 1.0)
        obs.set_gauge("g", 2.0)
        obs.record("r", {"x": 1})
        with obs.span("s", key="value"):
            pass
        with obs.timer("t"):
            pass
        assert obs.OBS.registry.empty
        assert not obs.OBS.tracer.events

    def test_env_steps_record_nothing(self):
        env = FloorplanEnv(get_circuit("ota1"))
        observation = env.reset()
        for _ in range(3):
            observation, _, done, _ = env.step(_first_valid_action(observation))
            if done:
                observation = env.reset()
        assert obs.OBS.registry.empty
        assert not obs.OBS.tracer.events


class TestPercentiles:
    @pytest.mark.parametrize("size", [1, 2, 3, 7, 50, 101])
    @pytest.mark.parametrize("q", [0.0, 50.0, 95.0, 99.0, 100.0])
    def test_matches_numpy_reference(self, size, q):
        rng = np.random.default_rng(size * 1000 + int(q))
        values = rng.normal(size=size).tolist()
        expected = float(np.percentile(values, q))
        assert obs.percentile(sorted(values), q) == pytest.approx(expected)

    def test_summary_fields(self):
        values = [5.0, 1.0, 3.0, 2.0, 4.0]
        summary = obs.summarize_values(values)
        assert summary["count"] == 5
        assert summary["min"] == 1.0
        assert summary["max"] == 5.0
        assert summary["mean"] == pytest.approx(3.0)
        assert summary["p50"] == pytest.approx(np.percentile(values, 50))
        assert summary["p95"] == pytest.approx(np.percentile(values, 95))
        assert summary["p99"] == pytest.approx(np.percentile(values, 99))

    def test_empty_summary(self):
        assert obs.summarize_values([]) == {"count": 0, "sum": 0.0}


class TestSpans:
    def test_nesting_records_both_levels(self):
        with obs.enabled_scope():
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
        events = {e["name"]: e for e in obs.OBS.tracer.events}
        assert set(events) == {"outer", "inner"}
        inner, outer = events["inner"], events["outer"]
        # Chrome-trace hierarchy is interval containment on one thread.
        assert inner["tid"] == outer["tid"]
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1e-3

    def test_reentrant_same_name(self):
        with obs.enabled_scope():
            with obs.span("ppo.update"):
                with obs.span("ppo.update"):
                    pass
        assert len(obs.OBS.tracer.events) == 2

    def test_exception_recorded_and_propagated(self):
        with obs.enabled_scope():
            with pytest.raises(ValueError):
                with obs.span("failing", attempt=1):
                    raise ValueError("boom")
        (event,) = obs.OBS.tracer.events
        assert event["args"]["error"] == "ValueError"
        assert event["args"]["attempt"] == 1

    def test_timer_feeds_histogram(self):
        with obs.enabled_scope():
            with obs.timer("op.seconds"):
                pass
        summary = obs.OBS.registry.histogram_summary("op.seconds")
        assert summary["count"] == 1
        assert summary["min"] >= 0.0

    def test_display_tids_are_small_and_stable(self):
        # Raw threading.get_ident() values are huge; Chrome-trace output
        # maps each thread to a small per-process lane (main thread = 0).
        import threading

        with obs.enabled_scope():
            with obs.span("main-span"):
                pass

            def worker():
                with obs.span("worker-span"):
                    pass

            threads = [threading.Thread(target=worker) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            with obs.span("main-span-2"):
                pass
        events = {e["name"]: e for e in obs.OBS.tracer.events}
        assert events["main-span"]["tid"] == 0
        assert events["main-span-2"]["tid"] == 0  # stable across records
        assert all(0 <= e["tid"] < 4 for e in events.values())


class TestRegistry:
    def test_merge_commutes(self):
        a = obs.MetricsRegistry()
        b = obs.MetricsRegistry()
        a.inc("x", 2); a.observe("h", 1.0)
        b.inc("x", 3); b.inc("y"); b.observe("h", 2.0)
        left = obs.MetricsRegistry()
        left.merge(a.snapshot()); left.merge(b.snapshot())
        right = obs.MetricsRegistry()
        right.merge(b.snapshot()); right.merge(a.snapshot())
        assert left.counters == right.counters == {"x": 5, "y": 1}
        assert sorted(left.histograms["h"]) == sorted(right.histograms["h"])
        assert left.histogram_summary("h") == right.histogram_summary("h")

    def test_gauge_merge_is_order_independent(self):
        # Satellite fix: gauges used to resolve by merge arrival order
        # (completion-order-dependent under the process backend).  Now the
        # latest *write timestamp* wins no matter which snapshot merges
        # first.
        early = obs.MetricsRegistry()
        early.set_gauge("reward", 1.0)
        late = obs.MetricsRegistry()
        late.set_gauge("reward", 2.0)
        # Force a strictly later stamp regardless of clock resolution.
        late._gauge_ts["reward"] = early._gauge_ts["reward"] + 1.0

        forward = obs.MetricsRegistry()
        forward.merge(early.snapshot()); forward.merge(late.snapshot())
        backward = obs.MetricsRegistry()
        backward.merge(late.snapshot()); backward.merge(early.snapshot())
        assert forward.gauges == backward.gauges == {"reward": 2.0}

    def test_gauge_merge_tie_breaks_on_value(self):
        a = obs.MetricsRegistry(); a.set_gauge("g", 1.0)
        b = obs.MetricsRegistry(); b.set_gauge("g", 2.0)
        b._gauge_ts["g"] = a._gauge_ts["g"]  # identical stamps
        left = obs.MetricsRegistry()
        left.merge(a.snapshot()); left.merge(b.snapshot())
        right = obs.MetricsRegistry()
        right.merge(b.snapshot()); right.merge(a.snapshot())
        # (ts, value) lexicographic: the larger value wins the tie, both ways.
        assert left.gauges == right.gauges == {"g": 2.0}

    def test_legacy_snapshot_without_stamps_merges(self):
        registry = obs.MetricsRegistry()
        registry.merge({"counters": {"x": 1}, "gauges": {"g": 5.0}})
        assert registry.gauges == {"g": 5.0}
        # A stamped write beats the unstamped (stamp-0) legacy value.
        fresh = obs.MetricsRegistry(); fresh.set_gauge("g", 1.0)
        registry.merge(fresh.snapshot())
        assert registry.gauges == {"g": 1.0}

    def test_drain_empties_registry(self):
        registry = obs.MetricsRegistry()
        registry.inc("x")
        snap = registry.drain()
        assert snap["counters"] == {"x": 1}
        assert registry.empty

    def test_write_jsonl_roundtrips(self, tmp_path):
        registry = obs.MetricsRegistry()
        registry.inc("runs", 4)
        registry.set_gauge("reward", -1.5)
        registry.observe("seconds", 0.25)
        registry.record("train.iteration", {"iteration": 0, "reward": -1.5})
        path = tmp_path / "metrics.jsonl"
        registry.write_jsonl(str(path))
        entries = obs.load_jsonl(str(path))
        by_type = {}
        for entry in entries:
            by_type.setdefault(entry["type"], []).append(entry)
        assert by_type["meta"][0]["kind"] == "metrics"
        assert by_type["counter"] == [{"type": "counter", "name": "runs", "value": 4}]
        assert by_type["gauge"][0]["value"] == -1.5
        assert by_type["histogram"][0]["count"] == 1
        assert by_type["record"][0]["data"]["iteration"] == 0


class TestHistogramCap:
    def test_unbounded_by_default(self):
        registry = obs.MetricsRegistry()
        for i in range(1000):
            registry.observe("h", float(i))
        assert len(registry.histograms["h"]) == 1000
        assert registry.hist_overflow == {}

    def test_cap_bounds_memory_and_counts_overflow(self):
        registry = obs.MetricsRegistry(hist_cap=16)
        for i in range(100):
            registry.observe("h", float(i))
        assert len(registry.histograms["h"]) == 16
        assert registry.hist_overflow["h"] == 84
        summary = registry.histogram_summary("h")
        assert summary["count"] == 16
        assert summary["overflow"] == 84
        # Reservoir keeps a sample of the stream, not just the head.
        assert max(registry.histograms["h"]) >= 16.0

    def test_env_var_cap(self, monkeypatch):
        monkeypatch.setenv(obs.HIST_CAP_ENV, "8")
        registry = obs.MetricsRegistry()
        assert registry.hist_cap == 8
        for i in range(20):
            registry.observe("h", float(i))
        assert len(registry.histograms["h"]) == 8
        assert registry.hist_overflow["h"] == 12

    def test_env_var_unset_or_zero_means_unbounded(self, monkeypatch):
        monkeypatch.delenv(obs.HIST_CAP_ENV, raising=False)
        assert obs.MetricsRegistry().hist_cap is None
        monkeypatch.setenv(obs.HIST_CAP_ENV, "0")
        assert obs.MetricsRegistry().hist_cap is None

    def test_overflow_visible_in_snapshot_write_and_merge(self, tmp_path):
        registry = obs.MetricsRegistry(hist_cap=4)
        for i in range(10):
            registry.observe("h", float(i))
        snap = registry.snapshot()
        assert snap["hist_overflow"] == {"h": 6}
        path = tmp_path / "m.jsonl"
        registry.write_jsonl(str(path))
        hist = [e for e in obs.load_jsonl(str(path))
                if e["type"] == "histogram"][0]
        assert hist["overflow"] == 6
        # Overflow counts add across worker merges.
        parent = obs.MetricsRegistry()
        parent.merge(snap)
        parent.merge(snap)
        assert parent.hist_overflow == {"h": 12}

    def test_reservoir_rng_is_private(self):
        import random as stdlib_random

        stdlib_random.seed(1234)
        before = stdlib_random.getstate()
        registry = obs.MetricsRegistry(hist_cap=4)
        for i in range(100):
            registry.observe("h", float(i))
        # Telemetry must never perturb program randomness (determinism
        # contract): the global `random` state is untouched.
        assert stdlib_random.getstate() == before


class TestAggregation:
    def _sweep_counters(self, backend: str, workers=2) -> dict:
        state = self._sweep_state(backend, workers)
        return state["counters"]

    def _sweep_state(self, backend: str, workers=2) -> dict:
        obs.reset()
        obs.enable()
        try:
            run_sweep(SWEEP, executor=Executor(backend=backend, workers=workers))
            return {
                "counters": dict(obs.OBS.registry.counters),
                "gauges": dict(obs.OBS.registry.gauges),
            }
        finally:
            obs.disable()

    def test_serial_and_process_counters_identical(self):
        serial = self._sweep_state("serial")
        process = self._sweep_state("process")
        # Counter merges commute, so the fleet's aggregate is exactly the
        # serial run's ledger regardless of which worker ran what — and
        # the gauge channel (timestamped last-write-wins) matches too.
        assert process["counters"] == serial["counters"]
        assert process["gauges"] == serial["gauges"]
        assert serial["counters"]["engine.tasks.total"] == 4
        assert serial["counters"]["engine.tasks.computed"] == 4
        assert serial["counters"]["baseline.runs"] == 4
        assert serial["counters"]["baseline.evaluations"] > 0

    def test_thread_backend_matches_serial(self):
        serial = self._sweep_counters("serial")
        threaded = self._sweep_counters("thread")
        assert threaded == serial

    def test_process_vecenv_ships_worker_telemetry(self):
        circuits = [get_circuit("ota_small")] * 2
        steps = 4
        obs.enable()
        try:
            with ProcessVecEnv(circuits) as vec:
                observations = vec.reset()
                for _ in range(steps):
                    actions = [_first_valid_action(o) for o in observations]
                    observations, _, _, _ = vec.step(actions)
                vec.drain_obs()
            counters = dict(obs.OBS.registry.counters)
        finally:
            obs.disable()
        # Every worker-side step lands in the parent ledger exactly once
        # (episode-end shipping + explicit drain, no double counting).
        assert counters["env.steps"] == steps * len(circuits)
        summary = obs.OBS.registry.histogram_summary("env.step.seconds")
        assert summary["count"] == steps * len(circuits)

    def test_process_vecenv_dark_when_disabled(self):
        circuits = [get_circuit("ota_small")] * 2
        with ProcessVecEnv(circuits) as vec:
            observations = vec.reset()
            actions = [_first_valid_action(o) for o in observations]
            vec.step(actions)
            vec.drain_obs()
        assert obs.OBS.registry.empty


class TestCacheMetrics:
    def test_registry_is_single_source_of_truth(self, tmp_path):
        from repro.engine import TaskSpec

        cache = ArtifactCache(root=tmp_path)
        spec = TaskSpec(fn="baseline", params={
            "circuit": "ota_small", "method": "sa",
            "config": {"moves_per_temperature": 4},
        }, seed=0)
        assert cache.get(spec) is None
        assert (cache.hits, cache.misses) == (0, 1)
        from repro.engine import run_task
        cache.put(run_task(spec))
        assert cache.puts == 1
        assert cache.get(spec) is not None
        assert (cache.hits, cache.misses) == (1, 1)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["puts"] == 1

    def test_global_mirror_only_when_enabled(self, tmp_path):
        cache = ArtifactCache(root=tmp_path)
        from repro.engine import TaskSpec

        spec = TaskSpec(fn="baseline", params={
            "circuit": "ota_small", "method": "sa",
            "config": {"moves_per_temperature": 4},
        }, seed=0)
        cache.get(spec)  # miss, telemetry off
        assert obs.OBS.registry.empty
        obs.enable()
        try:
            cache.get(spec)  # miss, telemetry on
        finally:
            obs.disable()
        assert obs.OBS.registry.counters == {"cache.miss": 1}
        assert cache.misses == 2  # instance ledger counted both


class TestLogging:
    def test_logger_namespace(self):
        assert obs.get_logger().name == "repro"
        assert obs.get_logger("engine").name == "repro.engine"

    def test_resolve_level_precedence(self, monkeypatch):
        monkeypatch.delenv(obs.LEVEL_ENV_VAR, raising=False)
        assert obs.resolve_level(None, quiet=False) == logging.INFO
        assert obs.resolve_level(None, quiet=True) == logging.WARNING
        monkeypatch.setenv(obs.LEVEL_ENV_VAR, "DEBUG")
        assert obs.resolve_level(None, quiet=False) == logging.DEBUG
        # Quiet and explicit levels both beat the environment.
        assert obs.resolve_level(None, quiet=True) == logging.WARNING
        assert obs.resolve_level("ERROR", quiet=True) == logging.ERROR

    def test_setup_logging_idempotent(self):
        first = obs.setup_logging(level="INFO")
        second = obs.setup_logging(level="DEBUG")
        assert first is second
        named = [h for h in first.handlers if h.get_name() == "repro-obs-handler"]
        assert len(named) == 1


class TestReport:
    def _write_run(self, tmp_path):
        with obs.enabled_scope():
            obs.inc("env.steps", 10)
            obs.observe("env.step.seconds", 2e-4)
            obs.set_gauge("train.episode_reward_mean", -3.0)
            obs.record("train.iteration", {
                "iteration": 0, "episode_reward_mean": -3.0, "approx_kl": 0.01,
                "policy_loss": -0.1, "value_loss": 4.2, "entropy": 6.1,
                "episodes_completed": 2, "clip_fraction": 0.2,
            })
            with obs.span("ppo.update"):
                pass
            metrics = str(tmp_path / "m.jsonl")
            trace = str(tmp_path / "t.jsonl")
            obs.write_metrics(metrics)
            obs.write_trace(trace)
        return metrics, trace

    def test_render_report(self, tmp_path):
        metrics, trace = self._write_run(tmp_path)
        text = obs.render_report(metrics_path=metrics, trace_path=trace)
        assert "env.steps" in text
        assert "env.step.seconds" in text
        assert "training iterations" in text
        assert "ppo.update" in text

    def test_report_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        metrics, trace = self._write_run(tmp_path)
        assert main(["report", "--metrics", metrics, "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "env.steps" in out
        assert "ppo.update" in out

    def test_report_requires_an_input(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["report"])

    def test_trace_lines_are_chrome_events(self, tmp_path):
        _, trace = self._write_run(tmp_path)
        with open(trace) as handle:
            events = [json.loads(line) for line in handle]
        spans = [e for e in events if e["ph"] == "X"]
        meta = [e for e in events if e["ph"] == "M"]
        assert spans, "trace must contain the recorded span"
        for event in spans:
            assert {"name", "ts", "dur", "pid", "tid"} <= set(event)
        # Metadata events label the processes for Perfetto and the report.
        assert any(e["name"] == "process_name" for e in meta)
        assert all(e["ph"] in ("X", "M", "s", "f") for e in events)

    def test_trace_out_writes_perfetto_json(self, tmp_path, capsys):
        from repro.cli import main

        metrics, trace = self._write_run(tmp_path)
        out_path = str(tmp_path / "perfetto.json")
        assert main(["report", "--trace", trace, "--trace-out", out_path]) == 0
        with open(out_path) as handle:
            payload = json.load(handle)
        assert isinstance(payload["traceEvents"], list)
        assert any(e.get("name") == "ppo.update" for e in payload["traceEvents"])
