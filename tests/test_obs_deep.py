"""Tests for the deep-observability layer (PR 9).

Three pillars, each pinned against its acceptance contract:

* **Trace unification** — engine process workers, ``ProcessVecEnv``
  workers, and the solve server's pool buffer spans locally, ship them
  with the existing metrics payloads, and the parent rebases them onto
  one wall-clock axis: one merged trace per run, worker span count > 0,
  parent/child wall-clock containment after normalization.
* **Sampling profiler** — background sampling over
  ``sys._current_frames()``, phase tagging via ``profile_scope``,
  collapsed-stack round trip, and the strict nothing-when-off contract.
* **Perf ledger** — ``repro bench record`` appends, ``repro report
  --bench`` renders a trajectory over >= 2 entries and flags drops
  beyond the threshold.
"""

import json
import os
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.circuits import get_circuit
from repro.engine import Executor, SweepSpec, run_sweep
from repro.floorplan.vecenv import ProcessVecEnv
from repro.obs import bench as obs_bench
from repro.obs import prof as obs_prof

#: Wall-clock containment tolerance (us).  Same-host anchors agree to
#: sub-microsecond; 2ms absorbs scheduling jitter around the endpoints.
CLOCK_TOLERANCE_US = 2_000.0

SWEEP = SweepSpec(
    methods=["sa"],
    circuits=["ota_small"],
    seeds=[0, 1, 2],
    config={"moves_per_temperature": 4},
)


@pytest.fixture(autouse=True)
def clean_obs():
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()
    if obs.OBS.profiler is not None:
        obs.stop_profiler()


def _events_by_name(events):
    grouped = {}
    for event in events:
        if event.get("ph") == "X":
            grouped.setdefault(event["name"], []).append(event)
    return grouped


def _contained(child, parents, tolerance=CLOCK_TOLERANCE_US):
    """True if some parent interval contains the child's (ts, ts+dur)."""
    c0, c1 = child["ts"], child["ts"] + child["dur"]
    return any(
        p["ts"] - tolerance <= c0 and c1 <= p["ts"] + p["dur"] + tolerance
        for p in parents
    )


class TestEngineTraceUnification:
    def test_process_sweep_produces_one_merged_trace(self):
        parent_pid = os.getpid()
        obs.enable()
        try:
            run_sweep(SWEEP, executor=Executor(backend="process", workers=2))
            events = list(obs.OBS.tracer.events)
        finally:
            obs.disable()
        grouped = _events_by_name(events)

        # Worker spans survived the round trip into the parent buffer.
        worker_spans = grouped.get("engine.task.worker", [])
        assert len(worker_spans) == 3
        assert all(e["pid"] != parent_pid for e in worker_spans)
        # Task bodies (baseline.sa) recorded in the workers came too.
        assert len(grouped.get("baseline.sa", [])) == 3

        # Parent-side dispatch spans exist for the same tasks.
        parent_spans = grouped.get("engine.task", [])
        assert len(parent_spans) == 3
        assert all(e["pid"] == parent_pid for e in parent_spans)

        # After wall-clock normalization every worker execution sits
        # inside some parent dispatch span (dispatch covers queue + run).
        for span in worker_spans:
            assert _contained(span, parent_spans), (
                f"worker span not contained after rebasing: {span}"
            )

        # The parent's map_tasks span brackets everything.
        (outer,) = grouped["engine.map_tasks"]
        for span in worker_spans + parent_spans:
            assert _contained(span, [outer])

        # Flow events: one dispatch arrow per task, started in the
        # parent ("s") and terminated in a worker ("f"), sharing ids.
        starts = {e["id"] for e in events if e.get("ph") == "s"}
        ends = {e["id"] for e in events if e.get("ph") == "f"}
        assert len(starts) == 3
        assert starts == ends

    def test_merged_timestamps_on_one_axis(self):
        obs.enable()
        try:
            run_sweep(SWEEP, executor=Executor(backend="process", workers=2))
            events = [e for e in obs.OBS.tracer.events if e.get("ph") == "X"]
        finally:
            obs.disable()
        # Rebased worker timestamps land within the run's wall span —
        # not at raw per-process perf_counter offsets (which would be
        # wildly negative/positive relative to the parent epoch).
        (outer,) = [e for e in events if e["name"] == "engine.map_tasks"]
        lo = outer["ts"] - CLOCK_TOLERANCE_US
        hi = outer["ts"] + outer["dur"] + CLOCK_TOLERANCE_US
        for event in events:
            assert lo <= event["ts"] <= hi

    def test_report_renders_worker_processes(self, tmp_path, capsys):
        from repro.cli import main

        obs.enable()
        try:
            run_sweep(SWEEP, executor=Executor(backend="process", workers=2))
            trace = str(tmp_path / "t.jsonl")
            obs.write_trace(trace)
        finally:
            obs.disable()
        assert main(["report", "--trace", trace]) == 0
        out = capsys.readouterr().out
        assert "engine.task.worker" in out
        assert "engine-worker" in out      # per-process table, labeled
        assert "flow events" in out

    def test_disabled_process_sweep_records_nothing(self):
        run_sweep(SWEEP, executor=Executor(backend="process", workers=2))
        assert not obs.OBS.tracer.events
        assert obs.OBS.registry.empty


def _first_valid_action(observation) -> int:
    return int(np.nonzero(observation.action_mask)[0][0])


class TestVecEnvTraceUnification:
    def _run_episodes(self, steps=60):
        circuits = [get_circuit("ota_small")] * 2
        with ProcessVecEnv(circuits) as vec:
            observations = vec.reset()
            for _ in range(steps):
                actions = [_first_valid_action(o) for o in observations]
                observations, _, dones, _ = vec.step(actions)
            vec.drain_obs()

    def test_worker_episode_spans_ship_to_parent(self):
        parent_pid = os.getpid()
        obs.enable()
        try:
            with obs.span("collect.loop"):
                self._run_episodes()
            events = list(obs.OBS.tracer.events)
        finally:
            obs.disable()
        grouped = _events_by_name(events)

        episodes = grouped.get("vecenv.episode", [])
        assert episodes, "worker episode spans must reach the parent"
        assert all(e["pid"] != parent_pid for e in episodes)
        worker_pids = {e["pid"] for e in episodes}
        assert len(worker_pids) == 2

        # Rebased worker spans sit inside the parent's collect span.
        (outer,) = grouped["collect.loop"]
        for episode in episodes:
            assert _contained(episode, [outer])

        # One spawn flow arrow per worker, closed by the worker.
        starts = {e["id"] for e in events if e.get("ph") == "s"}
        ends = {e["id"] for e in events if e.get("ph") == "f"}
        assert len(starts) == 2
        assert starts == ends

    def test_disabled_vecenv_records_nothing(self):
        self._run_episodes(steps=4)
        assert not obs.OBS.tracer.events
        assert obs.OBS.registry.empty


class TestServeTraceUnification:
    def test_stats_drain_ships_server_telemetry(self):
        import asyncio

        from repro.serve import ServeConfig, SolveServer
        from repro.serve.client import SolveClient

        async def scenario():
            server = SolveServer(config=ServeConfig(
                port=0, cache=False, backend="serial",
            ))
            await server.start()
            address = server.address
            try:
                def client_calls():
                    with SolveClient(address) as client:
                        client.solve("ota_small", method="sa", seed=0,
                                     config={"moves_per_temperature": 4})
                        return client.stats(drain=True)
                return await asyncio.to_thread(client_calls)
            finally:
                await server.close()

        obs.enable()
        try:
            stats = asyncio.run(scenario())
            # The drained payload folds into a (fresh) local registry the
            # way a remote training parent would consume it.
            obs.reset()
            obs.merge_worker(stats["obs"], label="solve-server")
            counters = dict(obs.OBS.registry.counters)
            events = list(obs.OBS.tracer.events)
        finally:
            obs.disable()
        assert stats["trace_id"]
        assert counters.get("serve.requests") == 1
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert "serve.request" in names

    def test_stats_without_drain_has_no_obs_payload(self):
        import asyncio

        from repro.serve import ServeConfig, SolveServer
        from repro.serve.client import SolveClient

        async def scenario():
            server = SolveServer(config=ServeConfig(
                port=0, cache=False, backend="serial",
            ))
            await server.start()
            address = server.address
            try:
                def client_calls():
                    with SolveClient(address) as client:
                        client.ping()
                        return client.stats()
                return await asyncio.to_thread(client_calls)
            finally:
                await server.close()

        stats = asyncio.run(scenario())
        assert "obs" not in stats


class TestSamplingProfiler:
    def _busy(self, seconds: float) -> None:
        deadline = time.perf_counter() + seconds
        while time.perf_counter() < deadline:
            sum(i * i for i in range(200))

    def test_sampler_captures_stacks(self):
        prof = obs_prof.SamplingProfiler(hz=200)
        prof.start()
        try:
            self._busy(0.25)
        finally:
            prof.stop()
        assert prof.sample_count > 0
        stacks = prof.stacks()
        frames = {frame for stack in stacks for frame in stack}
        assert any("_busy" in frame for frame in frames)

    def test_profile_scope_tags_samples(self):
        prof = obs.start_profiler(hz=200)
        try:
            with obs.profile_scope("hot.phase"):
                self._busy(0.25)
        finally:
            obs.stop_profiler()
        tagged = [s for s in prof.stacks() if s and s[0] == "<hot.phase>"]
        assert tagged, "scope label must prefix the sampled stacks"

    def test_profile_scope_is_null_when_off(self):
        assert obs.OBS.profiler is None
        assert obs.profile_scope("x") is obs.NULL_SPAN
        assert obs.profile_scope("x") is obs.profile_scope("y")

    def test_no_sampler_thread_when_off(self):
        names = {t.name for t in threading.enumerate()}
        assert "repro-obs-profiler" not in names

    def test_collapsed_round_trip(self, tmp_path):
        prof = obs_prof.SamplingProfiler(hz=200)
        prof._samples = {("a", "b", "c"): 3, ("a", "d"): 2}
        prof.sample_count = 5
        path = str(tmp_path / "profile.txt")
        prof.write_collapsed(path)
        assert obs_prof.load_collapsed(path) == prof._samples

    def test_attribution_self_vs_cumulative(self):
        stacks = {("main", "f", "g"): 6, ("main", "f"): 3, ("main", "h"): 1}
        rows = {r["frame"]: r for r in obs_prof.attribution(stacks)}
        assert rows["g"]["self"] == 6
        assert rows["f"]["self"] == 3
        assert rows["f"]["cum"] == 9
        assert rows["main"]["cum"] == 10
        assert rows["main"]["self"] == 0

    def test_cli_profile_flag_writes_collapsed(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "profile.txt")
        assert main(["circuits", "--profile", path, "-q"]) == 0
        assert os.path.exists(path)
        assert obs.OBS.profiler is None  # uninstalled on exit

    def test_report_profile_renders_attribution(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "profile.txt")
        with open(path, "w") as handle:
            handle.write("main;hot_loop 42\nmain;cold_path 3\n")
        assert main(["report", "--profile", path]) == 0
        out = capsys.readouterr().out
        assert "hot_loop" in out
        assert "45 samples" in out


class TestBenchLedger:
    def _write_bench(self, tmp_path, name, speedup, rate):
        path = tmp_path / f"BENCH_{name}.json"
        path.write_text(json.dumps({
            "speedup": speedup,
            "phases": [{"label": "warm", "requests_per_second": rate}],
            "floor": 1.0,           # excluded: configuration, not a metric
            "num_envs": 4,          # no metric token: ignored
        }))
        return str(path)

    def test_record_appends_stamped_entries(self, tmp_path):
        bench = self._write_bench(tmp_path, "policy", 3.0, 100.0)
        history = str(tmp_path / "history.jsonl")
        entries = obs_bench.record_bench([bench], history_path=history)
        assert len(entries) == 1
        entry = entries[0]
        assert entry["bench"] == "policy"
        assert entry["metrics"] == {
            "speedup": 3.0, "phases[warm].requests_per_second": 100.0,
        }
        assert entry["dtype"]
        assert entry["host"]["cpus"] == os.cpu_count()
        assert "floor" not in entry["metrics"]
        # Appending again grows the ledger; nothing is overwritten.
        obs_bench.record_bench([bench], history_path=history)
        assert len(obs_bench.load_history(history)) == 2

    def test_regression_flagged_below_threshold(self, tmp_path):
        history = str(tmp_path / "history.jsonl")
        good = self._write_bench(tmp_path, "policy", 3.0, 100.0)
        obs_bench.record_bench([good], history_path=history)
        bad = self._write_bench(tmp_path, "policy", 2.0, 99.0)
        obs_bench.record_bench([bad], history_path=history)
        entries = obs_bench.load_history(history)
        flagged = obs_bench.regressions(entries, threshold=0.9)
        assert [f["metric"] for f in flagged] == ["speedup"]
        assert flagged[0]["ratio"] == pytest.approx(2.0 / 3.0)
        # 99 vs 100 is within the 0.9x threshold: not flagged.
        rendered = obs_bench.render_bench(entries, threshold=0.9)
        assert "REGRESSION policy:speedup" in rendered
        assert "requests_per_second" in rendered

    def test_no_regression_render(self, tmp_path):
        history = str(tmp_path / "history.jsonl")
        bench = self._write_bench(tmp_path, "policy", 3.0, 100.0)
        obs_bench.record_bench([bench], history_path=history)
        rendered = obs_bench.render_bench(obs_bench.load_history(history))
        assert "no regressions beyond threshold" in rendered

    def test_malformed_lines_skipped(self, tmp_path):
        history = tmp_path / "history.jsonl"
        entry = {"bench": "x", "metrics": {"speedup": 1.0}}
        history.write_text(
            json.dumps(entry) + "\nnot json\n" + json.dumps(entry) + "\n"
        )
        assert len(obs_bench.load_history(str(history))) == 2

    def test_cli_record_and_report(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        bench = self._write_bench(tmp_path, "serving", 2.5, 80.0)
        history = str(tmp_path / "history.jsonl")
        assert main(["bench", "record", bench, "--history", history]) == 0
        slower = self._write_bench(tmp_path, "serving", 1.0, 79.0)
        assert main(["bench", "record", slower, "--history", history]) == 0
        capsys.readouterr()
        assert main(["report", "--bench", history, "--annotate"]) == 0
        out = capsys.readouterr().out
        assert "bench trajectory (2 entries" in out
        assert "REGRESSION serving:speedup" in out
        assert "::warning title=bench regression::serving:speedup" in out

    def test_cli_record_nothing_found(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["bench", "record"]) == 1
