"""Tests for the end-to-end pipeline and experiment harnesses (smoke scale)."""

import numpy as np
import pytest

from repro import run_pipeline
from repro.baselines import SAConfig, simulated_annealing
from repro.circuits import get_circuit
from repro.experiments import (
    interquartile_mean,
    iqm_and_std,
    render_mask_ascii,
    run_fig5,
    run_table2,
)
from repro.experiments.table2 import format_table2
from repro.pipeline import default_floorplanner


def fast_floorplanner(circuit):
    return simulated_annealing(
        circuit, SAConfig(moves_per_temperature=8, cooling=0.8, seed=0))


class TestPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        return run_pipeline(get_circuit("ota_small"), floorplanner=fast_floorplanner)

    def test_all_stages_produce_artifacts(self, result):
        assert len(result.floorplan.rects) == 3
        assert result.route.num_nets > 0
        assert len(result.channels) > 0
        assert len(result.detail.wires) > 0
        assert len(result.layout) > 0

    def test_timings_recorded(self, result):
        for stage in ("floorplan", "global_route", "channels",
                      "detailed_route", "layout", "signoff"):
            assert stage in result.timings
            assert result.timings[stage] >= 0
        assert result.total_time > 0

    def test_signoff_reports(self, result):
        assert result.drc is not None
        assert result.lvs is not None
        assert isinstance(result.signoff_clean, bool)

    def test_summary_renders(self, result):
        text = result.summary()
        assert "OTA-small" in text
        assert "area=" in text

    def test_default_floorplanner(self):
        result = default_floorplanner(get_circuit("ota_small"))
        assert len(result.rects) == 3

    def test_routing_ready_no_overlap_with_wires(self, result):
        """Wires must exist outside blocks or on upper metals — the layout
        generator must not produce zero wires for a multi-net circuit."""
        assert result.detail.total_wire_length > 0


class TestStats:
    def test_iqm_plain_mean_for_small_samples(self):
        assert interquartile_mean([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_iqm_robust_to_outliers(self):
        values = [1.0] * 10 + [1000.0]
        assert interquartile_mean(values) == pytest.approx(1.0)

    def test_iqm_and_std(self):
        m, s = iqm_and_std([2.0, 2.0, 2.0, 2.0])
        assert m == 2.0 and s == 0.0

    def test_empty_degrades_gracefully(self):
        # Hardened contract: empty input yields 0.0, never a crash or NaN
        # (full coverage in tests/test_stats.py).
        assert interquartile_mean([]) == 0.0
        assert iqm_and_std([]) == (0.0, 0.0)


class TestFigureHarnesses:
    def test_fig5_masks(self):
        result = run_fig5("ota2", placed=3)
        assert result.wire.shape == (32, 32)
        assert result.dead_space.shape == (32, 32)
        assert result.placed_blocks == 3
        assert (result.wire >= 0).all() and (result.wire <= 1).all()
        assert (result.dead_space >= 0).all() and (result.dead_space <= 1).all()

    def test_fig5_rejects_fully_placed(self):
        with pytest.raises(ValueError):
            run_fig5("ota_small", placed=3)

    def test_mask_ascii_render(self):
        mask = np.linspace(0, 1, 32 * 32).reshape(32, 32)
        text = render_mask_ascii(mask)
        assert len(text.splitlines()) == 32


class TestTable2:
    def test_rows_structure(self):
        # SA-based "Ours" (no agent) at smoke scale via default circuits
        rows = run_table2(circuits=["ota_small"])
        assert len(rows) == 2
        ours = next(r for r in rows if r.method == "Ours")
        manual = next(r for r in rows if r.method == "Manual")
        assert ours.area > 0 and manual.area > 0
        assert ours.template_seconds is not None
        assert manual.template_seconds is None
        assert manual.total_hours == 8.0

    def test_automated_time_far_below_manual(self):
        """The paper's headline: layout time drops by double-digit %."""
        rows = run_table2(circuits=["ota_small"])
        ours = next(r for r in rows if r.method == "Ours")
        manual = next(r for r in rows if r.method == "Manual")
        assert ours.total_hours < manual.total_hours

    def test_format_renders_deltas(self):
        rows = run_table2(circuits=["ota_small"])
        text = format_table2(rows)
        assert "% area" in text
        assert "OTA-small" in text
