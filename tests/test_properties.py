"""Cross-module property-based tests (hypothesis) on core invariants.

These complement the per-module suites with randomized end-to-end
invariants: legal action sequences never overlap blocks, masks never
admit illegal cells, packing is translation-consistent with metrics, and
the reward machinery is scale-coherent.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baselines import SequencePair, pack, rects_overlap, true_shapes
from repro.circuits import get_circuit, random_circuit
from repro.config import ACTION_SPACE
from repro.floorplan import (
    FloorplanEnv,
    FloorplanState,
    dead_space,
    floorplan_area,
    state_hpwl,
)
from repro.floorplan.masks import positional_masks
from repro.graph import circuit_to_graph


CIRCUITS = ("ota_small", "ota1", "ota2", "bias_small")


@st.composite
def rollout_seeds(draw):
    name = draw(st.sampled_from(CIRCUITS))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return name, seed


class TestEpisodeInvariants:
    @given(rollout_seeds())
    @settings(max_examples=15, deadline=None)
    def test_masked_rollouts_never_overlap(self, name_seed):
        """Any legal action sequence yields disjoint real rectangles."""
        name, seed = name_seed
        env = FloorplanEnv(get_circuit(name).with_constraints([]))
        rng = np.random.default_rng(seed)
        obs = env.reset()
        done = False
        while not done:
            valid = np.nonzero(obs.action_mask)[0]
            if len(valid) == 0:
                break
            obs, _, done, info = env.step(int(rng.choice(valid)))
        placed = list(env.state.placed.values())
        for i, a in enumerate(placed):
            for b in placed[i + 1:]:
                x_gap = a.x >= b.x2 - 1e-9 or b.x >= a.x2 - 1e-9
                y_gap = a.y >= b.y2 - 1e-9 or b.y >= a.y2 - 1e-9
                # Grid cells are exclusive, but real sizes are smaller than
                # footprints, so real rects are disjoint too.
                assert x_gap or y_gap, f"{a} overlaps {b}"

    @given(rollout_seeds())
    @settings(max_examples=10, deadline=None)
    def test_dead_space_and_area_consistent(self, name_seed):
        """dead_space == 1 - placed/area for every partial placement."""
        name, seed = name_seed
        env = FloorplanEnv(get_circuit(name).with_constraints([]))
        rng = np.random.default_rng(seed)
        obs = env.reset()
        done = False
        while not done:
            valid = np.nonzero(obs.action_mask)[0]
            if len(valid) == 0:
                break
            obs, _, done, _ = env.step(int(rng.choice(valid)))
            area = floorplan_area(env.state)
            if area > 0:
                expected = 1.0 - env.state.placed_area() / area
                assert dead_space(env.state) == pytest.approx(expected)

    @given(rollout_seeds())
    @settings(max_examples=10, deadline=None)
    def test_partial_hpwl_monotone_in_placements(self, name_seed):
        """Partial HPWL never decreases as more blocks are placed (net
        bounding boxes only grow)."""
        name, seed = name_seed
        env = FloorplanEnv(get_circuit(name).with_constraints([]))
        rng = np.random.default_rng(seed)
        obs = env.reset()
        previous = 0.0
        done = False
        while not done:
            valid = np.nonzero(obs.action_mask)[0]
            if len(valid) == 0:
                break
            obs, _, done, _ = env.step(int(rng.choice(valid)))
            current = state_hpwl(env.state, partial=True)
            assert current >= previous - 1e-9
            previous = current


class TestMaskInvariants:
    @given(rollout_seeds())
    @settings(max_examples=10, deadline=None)
    def test_positional_masks_sound(self, name_seed):
        """Every admitted cell is geometrically placeable; every denied
        free-area cell either doesn't fit or breaks a constraint."""
        name, seed = name_seed
        state = FloorplanState(get_circuit(name).with_constraints([]))
        rng = np.random.default_rng(seed)
        # Place half the blocks randomly via the masks themselves.
        for _ in range(max(1, state.circuit.num_blocks // 2)):
            fp = positional_masks(state)
            options = np.argwhere(fp > 0)
            if len(options) == 0:
                return
            s, gy, gx = options[rng.integers(0, len(options))]
            state.place(int(s), int(gx), int(gy))
        fp = positional_masks(state)
        if state.done:
            return
        for s in range(3):
            ys, xs = np.nonzero(fp[s])
            for gy, gx in list(zip(ys, xs))[::23]:
                assert state.can_place(s, int(gx), int(gy))

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_action_mask_count_matches_positional(self, seed):
        env = FloorplanEnv(get_circuit("ota1").with_constraints([]))
        obs = env.reset()
        fp = positional_masks(env.state)
        assert obs.action_mask.sum() == int(fp.sum())
        assert obs.action_mask.shape == (ACTION_SPACE,)


class TestPackingProperties:
    @given(st.integers(min_value=2, max_value=12),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_pack_area_at_least_sum_of_blocks(self, n, seed):
        rng = np.random.default_rng(seed)
        sizes = [[(float(rng.uniform(1, 5)), float(rng.uniform(1, 5)))] * 3
                 for _ in range(n)]
        pair = SequencePair.random(n, 3, rng)
        rects = pack(pair, sizes)
        bbox_area = (max(r.x2 for r in rects) - min(r.x for r in rects)) * \
                    (max(r.y2 for r in rects) - min(r.y for r in rects))
        total = sum(r.width * r.height for r in rects)
        assert bbox_area >= total - 1e-6

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_pack_deterministic(self, seed):
        rng = np.random.default_rng(seed)
        ckt = get_circuit("ota1")
        sizes = true_shapes(ckt)
        pair = SequencePair.random(ckt.num_blocks, 3, rng)
        a = pack(pair, sizes)
        b = pack(pair, sizes)
        assert [(r.x, r.y) for r in a] == [(r.x, r.y) for r in b]


class TestGraphProperties:
    @given(st.integers(min_value=2, max_value=15),
           st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_random_circuit_graph_roundtrip(self, n, seed):
        """Graph conversion preserves node count and normalized rows."""
        rng = np.random.default_rng(seed)
        ckt = random_circuit(rng, num_blocks=n, constraint_probability=0.5)
        g = circuit_to_graph(ckt)
        assert g.num_nodes == n
        for relation in ("connect", "h_align", "v_align", "h_sym", "v_sym"):
            adj = g.adjacency(relation, normalize=True)
            rowsum = adj.sum(axis=1)
            # Rows are either 0 (no neighbors) or 1 (normalized).
            assert np.all((np.abs(rowsum) < 1e-12) | (np.abs(rowsum - 1) < 1e-12))
