"""Fault-tolerance layer (repro.resil): policy/journal/chaos units plus
executor crash paths, the bounded micro-batch queue, and vec-env crash
detection.

Deterministic by construction: chaos decisions are pure hashes, backoff
has no jitter, and every kill uses the sentinel ``KILL_EXIT_CODE`` so a
real crash can never masquerade as an injected one.  None of these tests
needs pytest-timeout locally; the CI chaos job adds ``--timeout`` as a
hang backstop.
"""

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.engine import ArtifactCache, Executor, TaskSpec, register_task
from repro.floorplan import ProcessVecEnv
from repro.resil import (
    PoolRebuildLimitError,
    QueueFullError,
    RetryPolicy,
    SweepJournal,
    TaskTimeoutError,
    WorkerCrashedError,
    call_with_retries,
    run_with_timeout,
)
from repro.resil import chaos
from repro.resil.chaos import KILL_EXIT_CODE, ChaosConfig, Injector
from repro.serve import MicroBatcher


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def test_default_is_default(self):
        policy = RetryPolicy()
        assert policy.is_default
        assert policy.attempts == 1

    def test_attempts_counts_first_try(self):
        assert RetryPolicy(retries=3).attempts == 4

    def test_backoff_is_deterministic_exponential_and_capped(self):
        policy = RetryPolicy(retries=9, backoff=0.1, multiplier=2.0,
                             max_backoff=0.5)
        delays = [policy.delay(n) for n in range(1, 6)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]
        # Pure function of the attempt number: identical on every call.
        assert delays == [policy.delay(n) for n in range(1, 6)]

    def test_delay_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy(retries=1).delay(0)

    def test_merged_applies_overrides_and_keeps_none(self):
        base = RetryPolicy(retries=1, timeout=10.0, backoff=0.3)
        merged = base.merged(timeout=2.0, retries=5)
        assert (merged.timeout, merged.retries) == (2.0, 5)
        assert merged.backoff == 0.3
        assert base.merged() is base
        assert base.merged(timeout=None, retries=None) is base

    @pytest.mark.parametrize("kwargs", [
        {"retries": -1},
        {"timeout": 0.0},
        {"timeout": -1.0},
        {"backoff": -0.1},
        {"multiplier": 0.5},
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestRunWithTimeout:
    def test_returns_value_within_deadline(self):
        assert run_with_timeout(lambda: 41 + 1, (), timeout=5.0) == 42

    def test_raises_task_timeout(self):
        with pytest.raises(TaskTimeoutError, match="slow"):
            run_with_timeout(time.sleep, (5.0,), timeout=0.05, label="slow")

    def test_propagates_exception(self):
        def boom():
            raise KeyError("inner")

        with pytest.raises(KeyError, match="inner"):
            run_with_timeout(boom, (), timeout=5.0)


class TestCallWithRetries:
    def test_retry_then_succeed_with_deterministic_backoff(self):
        calls = []
        slept = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise RuntimeError("transient")
            return "ok"

        policy = RetryPolicy(retries=3, backoff=0.1, multiplier=2.0)
        result = call_with_retries(flaky, policy, sleep=slept.append)
        assert result == "ok"
        assert len(calls) == 3
        assert slept == [0.1, 0.2]

    def test_exhausted_retries_reraise_last_error(self):
        def always():
            raise ValueError("permanent")

        policy = RetryPolicy(retries=2, backoff=0.0)
        with pytest.raises(ValueError, match="permanent"):
            call_with_retries(always, policy, sleep=lambda _: None)

    def test_final_timeout_carries_attempt_count(self):
        policy = RetryPolicy(retries=1, timeout=0.05, backoff=0.0)
        with pytest.raises(TaskTimeoutError) as info:
            call_with_retries(lambda: time.sleep(5.0), policy,
                              label="sleeper", sleep=lambda _: None)
        assert info.value.attempts == 2

    def test_on_retry_observes_each_failure(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise RuntimeError("again")
            return 7

        policy = RetryPolicy(retries=5, backoff=0.0)
        result = call_with_retries(
            flaky, policy, on_retry=lambda n, exc: seen.append((n, str(exc))),
            sleep=lambda _: None)
        assert result == 7
        assert seen == [(1, "again"), (2, "again")]


# ---------------------------------------------------------------------------
# Chaos configuration & deterministic firing
# ---------------------------------------------------------------------------

@pytest.fixture
def clean_chaos(monkeypatch):
    """No chaos active before or after the test, whatever it installs."""
    monkeypatch.delenv(chaos.ENV_VAR, raising=False)
    monkeypatch.delenv(chaos.DIR_ENV_VAR, raising=False)
    chaos.uninstall()
    yield
    chaos.uninstall()


class TestChaosConfig:
    def test_parse_full_spec(self):
        config = ChaosConfig.parse(
            "kill_worker:rate=0.5,seed=3;delay_task:value=20,once=0")
        kill = config.get("kill_worker")
        assert (kill.rate, kill.seed, kill.once) == (0.5, 3, True)
        delay = config.get("delay_task")
        assert (delay.magnitude, delay.once) == (20.0, False)
        assert config.get("hang_task") is None

    def test_value_defaults_per_kind(self):
        assert Injector("hang_task").magnitude == 3600.0
        assert Injector("delay_task").magnitude == 50.0
        assert Injector("kill_worker").magnitude == 0.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos kind"):
            ChaosConfig.parse("explode_disk")

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos option"):
            ChaosConfig.parse("kill_worker:colour=red")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            ChaosConfig.parse("kill_worker:rate=1.5")

    def test_empty_segments_skipped(self):
        config = ChaosConfig.parse(";kill_worker;;")
        assert set(config.injectors) == {"kill_worker"}


class TestChaosFiring:
    def test_disabled_never_fires(self, clean_chaos):
        assert not chaos.enabled()
        assert not chaos.fires("kill_worker", "any-key")

    def test_env_var_activates(self, clean_chaos, monkeypatch):
        monkeypatch.setenv(chaos.ENV_VAR, "delay_task:rate=0")
        assert chaos.enabled()
        assert chaos.active().get("delay_task").rate == 0.0

    def test_rate_one_always_rate_zero_never(self, clean_chaos):
        chaos.install(ChaosConfig.parse("kill_worker:rate=1,once=0"))
        assert all(chaos.fires("kill_worker", f"k{i}") for i in range(20))
        chaos.install(ChaosConfig.parse("kill_worker:rate=0,once=0"))
        assert not any(chaos.fires("kill_worker", f"k{i}") for i in range(20))

    def test_decision_is_pure_function_of_seed_kind_key(self, clean_chaos):
        chaos.install(ChaosConfig.parse("drop_conn:rate=0.5,seed=7,once=0"))
        first = [chaos.fires("drop_conn", f"key{i}") for i in range(64)]
        again = [chaos.fires("drop_conn", f"key{i}") for i in range(64)]
        assert first == again
        assert any(first) and not all(first)  # rate 0.5 splits the keys

    def test_different_seed_changes_the_schedule(self, clean_chaos):
        keys = [f"key{i}" for i in range(64)]
        chaos.install(ChaosConfig.parse("drop_conn:rate=0.5,seed=7,once=0"))
        a = [chaos.fires("drop_conn", k) for k in keys]
        chaos.install(ChaosConfig.parse("drop_conn:rate=0.5,seed=8,once=0"))
        b = [chaos.fires("drop_conn", k) for k in keys]
        assert a != b

    def test_once_marker_local(self, clean_chaos):
        chaos.install(ChaosConfig.parse("kill_worker:rate=1"))
        assert chaos.fires("kill_worker", "site")
        assert not chaos.fires("kill_worker", "site")
        assert chaos.fires("kill_worker", "other-site")

    def test_once_marker_cross_process_via_dir(self, clean_chaos,
                                               monkeypatch, tmp_path):
        monkeypatch.setenv(chaos.DIR_ENV_VAR, str(tmp_path))
        chaos.install(ChaosConfig.parse("kill_worker:rate=1"))
        assert chaos.fires("kill_worker", "site")
        # A respawned worker has no process memory — simulate by clearing
        # the local fallback set; the on-disk marker must still hold.
        chaos.uninstall()
        chaos.install(ChaosConfig.parse("kill_worker:rate=1"))
        assert not chaos.fires("kill_worker", "site")
        assert len(list(tmp_path.iterdir())) == 1


# ---------------------------------------------------------------------------
# Sweep journal
# ---------------------------------------------------------------------------

class TestSweepJournal:
    def test_record_and_load_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(str(path)) as journal:
            journal.record("aaa", meta={"tag": "sa/ota1/s0"})
            journal.record("bbb")
        loaded = SweepJournal(str(path))
        assert loaded.load() == {"aaa", "bbb"}
        assert "aaa" in loaded and len(loaded) == 2

    def test_record_is_idempotent(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(str(path)) as journal:
            journal.record("aaa")
            journal.record("aaa")
        assert len(path.read_text().splitlines()) == 1

    def test_torn_tail_line_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(str(path)) as journal:
            journal.record_many(["aaa", "bbb"])
        with open(path, "a") as handle:
            handle.write('{"key": "ccc"')  # kill mid-append: no newline,
        journal = SweepJournal(str(path))  # no closing brace
        assert journal.load() == {"aaa", "bbb"}

    def test_sweep_hash_filters_stale_records(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepJournal(str(path), sweep_hash="grid-v1") as journal:
            journal.record("aaa")
        with SweepJournal(str(path), sweep_hash="grid-v2") as journal:
            journal.record("bbb")
        assert SweepJournal(str(path), sweep_hash="grid-v1").load() == {"aaa"}
        assert SweepJournal(str(path), sweep_hash="grid-v2").load() == {"bbb"}
        assert SweepJournal(str(path)).load() == {"aaa", "bbb"}

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "j.jsonl"
        with SweepJournal(str(path)) as journal:
            journal.record("aaa")
        assert path.exists()

    def test_missing_file_loads_empty(self, tmp_path):
        assert SweepJournal(str(tmp_path / "absent.jsonl")).load() == set()


# ---------------------------------------------------------------------------
# TaskSpec: timeout/retries are execution policy, not identity
# ---------------------------------------------------------------------------

class TestPolicyExcludedFromTaskIdentity:
    def test_timeout_and_retries_do_not_change_content_hash(self):
        base = TaskSpec(fn="baseline", params={"x": 1}, seed=0)
        tuned = TaskSpec(fn="baseline", params={"x": 1}, seed=0,
                         timeout=30.0, retries=3)
        assert base.content_hash() == tuned.content_hash()


# ---------------------------------------------------------------------------
# Executor crash paths (process-pool kill, deadline, retry-then-succeed)
# ---------------------------------------------------------------------------

@register_task("resil_echo")
def _echo(params, seed, context):
    return seed * 7


@register_task("resil_kill_once")
def _kill_once(params, seed, context):
    """Victim task: dies hard on its first run, succeeds after that."""
    marker = params["marker"]
    if params.get("victim") and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(KILL_EXIT_CODE)
    return seed * 7


@register_task("resil_sleep")
def _sleep(params, seed, context):
    time.sleep(params["seconds"])
    return seed


@register_task("resil_flaky")
def _flaky(params, seed, context):
    """Fails ``params['failures']`` times, then succeeds (file counter,
    so the count survives process-backend attempts under fork)."""
    path = params["counter"]
    n = int(open(path).read()) if os.path.exists(path) else 0
    with open(path, "w") as handle:
        handle.write(str(n + 1))
    if n < params["failures"]:
        raise RuntimeError(f"flaky failure {n}")
    return seed + 100


@pytest.fixture
def fork_ctx(monkeypatch):
    """Process-backend tests need fork so test-registered tasks exist in
    workers (spawn would re-import only the library registry)."""
    if "fork" not in __import__("multiprocessing").get_all_start_methods():
        pytest.skip("fork start method unavailable")
    monkeypatch.setenv("REPRO_MP_CONTEXT", "fork")


class TestExecutorCrashPaths:
    def test_broken_pool_rebuilds_and_preserves_order(self, tmp_path,
                                                      fork_ctx):
        marker = str(tmp_path / "killed")
        specs = [
            TaskSpec(fn="resil_kill_once", seed=s,
                     params={"marker": marker, "victim": s == 2})
            for s in range(6)
        ]
        ex = Executor(backend="process", workers=2)
        results = ex.map_tasks(specs)
        assert [r.value for r in results] == [s * 7 for s in range(6)]
        assert ex.stats.pool_rebuilds >= 1
        assert ex.stats.computed == 6
        assert ex.stats.retries == 0  # a pool crash consumes no retries
        assert "pool rebuild" in ex.stats.summary()

    def test_rebuild_limit_raises_typed_error(self, tmp_path, fork_ctx):
        # No marker check: the victim dies on *every* attempt, so the
        # pool breaks until the rebuild cap trips.
        @register_task("resil_kill_always")
        def _kill_always(params, seed, context):  # noqa: F811
            os._exit(KILL_EXIT_CODE)

        specs = [TaskSpec(fn="resil_kill_always", seed=s) for s in range(2)]
        ex = Executor(backend="process", workers=2, max_pool_rebuilds=2)
        with pytest.raises(PoolRebuildLimitError, match="2"):
            ex.map_tasks(specs)
        assert ex.stats.pool_rebuilds == 3  # the limit-tripping attempt

    def test_serial_timeout_raises_and_counts(self):
        ex = Executor(backend="serial", policy=RetryPolicy(timeout=0.1))
        with pytest.raises(TaskTimeoutError):
            ex.map_tasks([TaskSpec(fn="resil_sleep",
                                   params={"seconds": 2.0})])
        assert ex.stats.timeouts == 1
        assert ex.stats.computed == 0

    def test_process_timeout_reclaims_stuck_worker(self, fork_ctx):
        # Two fast tasks plus one hung one: the blown deadline must kill
        # the stuck worker (pool rebuild), fail the task, and leave the
        # finished results intact.
        specs = [
            TaskSpec(fn="resil_echo", seed=0),
            TaskSpec(fn="resil_sleep", params={"seconds": 60.0},
                     timeout=0.5),
            TaskSpec(fn="resil_echo", seed=2),
        ]
        ex = Executor(backend="process", workers=2)
        began = time.perf_counter()
        with pytest.raises(TaskTimeoutError, match="resil_sleep"):
            ex.map_tasks(specs)
        assert time.perf_counter() - began < 30.0  # not 60: worker killed
        assert ex.stats.timeouts == 1

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_retry_then_succeed_all_backends(self, backend, tmp_path,
                                             fork_ctx):
        counter = str(tmp_path / f"count-{backend}")
        specs = [
            TaskSpec(fn="resil_echo", seed=0),
            TaskSpec(fn="resil_flaky", seed=1,
                     params={"counter": counter, "failures": 2}),
            TaskSpec(fn="resil_echo", seed=2),
        ]
        ex = Executor(backend=backend, workers=2,
                      policy=RetryPolicy(retries=3, backoff=0.01))
        results = ex.map_tasks(specs)
        assert [r.value for r in results] == [0, 101, 14]
        assert ex.stats.retries == 2
        assert ex.stats.computed == 3
        assert ex.stats.timeouts == 0
        assert "2 retries" in ex.stats.summary()

    def test_retries_exhausted_propagates_task_error(self, tmp_path):
        counter = str(tmp_path / "count-exhausted")
        spec = TaskSpec(fn="resil_flaky",
                        params={"counter": counter, "failures": 99})
        ex = Executor(backend="serial", policy=RetryPolicy(retries=2,
                                                           backoff=0.0))
        with pytest.raises(RuntimeError, match="flaky failure 2"):
            ex.map_tasks([spec])
        assert ex.stats.retries == 2

    def test_default_policy_unchanged_failure_semantics(self, tmp_path):
        counter = str(tmp_path / "count-default")
        spec = TaskSpec(fn="resil_flaky",
                        params={"counter": counter, "failures": 1})
        ex = Executor(backend="serial")
        with pytest.raises(RuntimeError, match="flaky failure 0"):
            ex.map_tasks([spec])
        assert ex.stats.retries == 0


# ---------------------------------------------------------------------------
# Bounded micro-batch queue
# ---------------------------------------------------------------------------

class TestMicroBatcherBound:
    def test_overflow_raises_queue_full(self):
        async def run():
            release = asyncio.Event()

            async def handler(items):
                await release.wait()
                return [item for item in items]

            batcher = MicroBatcher(handler, max_batch=1, max_wait=0.001,
                                   maxsize=2)
            batcher.start()
            try:
                # First item is pulled into the (blocked) batch; the next
                # two fill the queue; the fourth must be refused loudly.
                tasks = [asyncio.ensure_future(batcher.submit(0))]
                await asyncio.sleep(0.05)  # consumer now blocked in handler
                tasks += [asyncio.ensure_future(batcher.submit(i))
                          for i in (1, 2)]
                await asyncio.sleep(0.05)
                assert batcher.queue_depth == 2
                with pytest.raises(QueueFullError, match="micro-batch"):
                    await batcher.submit(99)
                release.set()
                assert await asyncio.gather(*tasks) == [0, 1, 2]
            finally:
                release.set()
                await batcher.stop()

        asyncio.run(run())

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda items: items, maxsize=0)


# ---------------------------------------------------------------------------
# Vec-env crash detection & respawn
# ---------------------------------------------------------------------------

def _valid_actions(observations):
    return [int(np.nonzero(obs.action_mask)[0][0]) for obs in observations]


class TestVecEnvCrash:
    def test_killed_worker_detected_not_hung(self):
        """Regression: a dead worker used to hang ``conn.recv()`` forever;
        now it raises a typed error naming the worker, promptly."""
        circuit = get_circuit("ota_small")
        with ProcessVecEnv([circuit, circuit]) as venv:
            observations = venv.reset()
            os.kill(venv._procs[1].pid, signal.SIGKILL)
            venv._procs[1].join(timeout=10.0)
            began = time.perf_counter()
            with pytest.raises(WorkerCrashedError) as info:
                venv.step(_valid_actions(observations))
            assert time.perf_counter() - began < 30.0
            assert info.value.index == 1
            assert "worker 1" in str(info.value)

    def test_respawn_turns_crash_into_terminal_step(self):
        circuit = get_circuit("ota_small")
        with ProcessVecEnv([circuit, circuit], respawn=True) as venv:
            observations = venv.reset()
            os.kill(venv._procs[0].pid, signal.SIGKILL)
            venv._procs[0].join(timeout=10.0)
            observations, rewards, dones, infos = venv.step(
                _valid_actions(observations))
            assert bool(dones[0]) is True
            assert infos[0]["worker_crashed"] is True
            assert infos[0]["worker_index"] == 0
            assert venv._procs[0].is_alive()
            # The fleet keeps stepping after the respawn.
            observations, _, _, infos = venv.step(
                _valid_actions(observations))
            assert "worker_crashed" not in infos[0]

    def test_step_timeout_benign_on_healthy_workers(self):
        circuit = get_circuit("ota_small")
        with ProcessVecEnv([circuit], step_timeout=30.0) as venv:
            observations = venv.reset()
            observations, _, _, _ = venv.step(_valid_actions(observations))
            assert len(observations) == 1

    def test_step_timeout_validated(self):
        with pytest.raises(ValueError):
            ProcessVecEnv([get_circuit("ota_small")], step_timeout=0.0)
