"""Seeded fault-injection matrix (repro.resil.chaos) across the three
process boundaries: engine pools, the solve service, and vec-env workers
— plus the crash-resumable-sweep regression.

Every test derives its injector seed from ``$REPRO_CHAOS_SEED`` (the CI
chaos job runs a small seed matrix; locally it defaults to 0), and every
assertion about "did a fault fire" is computed from the same pure hash
the injector uses — so these tests are deterministic per seed, never
probabilistic.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.circuits import get_circuit
from repro.config import TrainConfig
from repro.engine import (
    ArtifactCache,
    Executor,
    SweepSpec,
    TaskSpec,
    register_task,
    run_sweep,
)
from repro.floorplan import ProcessVecEnv
from repro.resil import RetryPolicy, SweepJournal, WorkerCrashedError
from repro.resil import chaos
from repro.resil.chaos import KILL_EXIT_CODE, _fraction
from repro.rl import FloorplanAgent
from repro.serve import ServeConfig, ServerThread, SolveClient

#: CI matrix leg: shifts every injector seed so each leg exercises a
#: different deterministic fault schedule.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture(scope="module", autouse=True)
def chaos_artifacts():
    """CI post-mortem artifact: when the chaos job sets
    ``$REPRO_CHAOS_TRACE`` / ``$REPRO_CHAOS_METRICS``, record telemetry
    across this module and write it out at the end (uploaded on
    failure).  A no-op locally."""
    trace_path = os.environ.get("REPRO_CHAOS_TRACE")
    if trace_path:
        obs.enable()
    yield
    if trace_path:
        try:
            obs.write_trace(trace_path)
            metrics_path = os.environ.get("REPRO_CHAOS_METRICS")
            if metrics_path:
                obs.write_metrics(metrics_path)
        except Exception:
            pass
        obs.disable()


@pytest.fixture
def chaos_env(monkeypatch, tmp_path):
    """Arm chaos via the environment (so forked workers inherit it) and
    guarantee a clean slate before and after."""
    marker_dir = tmp_path / "chaos-markers"

    def arm(spec: str) -> None:
        monkeypatch.setenv(chaos.ENV_VAR, spec)
        monkeypatch.setenv(chaos.DIR_ENV_VAR, str(marker_dir))

    chaos.uninstall()
    yield arm
    chaos.uninstall()


@pytest.fixture
def fork_ctx(monkeypatch):
    if "fork" not in __import__("multiprocessing").get_all_start_methods():
        pytest.skip("fork start method unavailable")
    monkeypatch.setenv("REPRO_MP_CONTEXT", "fork")


def small_agent(seed: int = 0) -> FloorplanAgent:
    return FloorplanAgent(config=TrainConfig(
        num_envs=2, rollout_steps=16, ppo_epochs=1, minibatch_size=8,
        seed=seed,
    ))


@register_task("chaos_echo")
def _chaos_echo(params, seed, context):
    return seed * 7


# ---------------------------------------------------------------------------
# Engine under injected faults
# ---------------------------------------------------------------------------

class TestEngineChaos:
    @pytest.mark.parametrize("leg", range(2))
    def test_kill_worker_matrix_ordered_results_survive(self, leg,
                                                        chaos_env, fork_ctx):
        """Seeded kills across the task grid: whatever subset the hash
        selects, results come back complete and ordered."""
        seed = CHAOS_SEED * 100 + leg
        specs = [TaskSpec(fn="chaos_echo", seed=s) for s in range(8)]
        victims = [s.content_hash() for s in specs
                   if _fraction(seed, "kill_worker", s.content_hash()) < 0.5]
        chaos_env(f"kill_worker:rate=0.5,seed={seed}")
        ex = Executor(backend="process", workers=2)
        results = ex.map_tasks(specs)
        assert [r.value for r in results] == [s * 7 for s in range(8)]
        if victims:
            assert ex.stats.pool_rebuilds >= 1
        else:
            assert ex.stats.pool_rebuilds == 0

    def test_hang_task_recovered_by_timeout_and_retry_process(self,
                                                              chaos_env,
                                                              fork_ctx):
        chaos_env(f"hang_task:rate=1,value=60,seed={CHAOS_SEED}")
        specs = [TaskSpec(fn="chaos_echo", seed=s) for s in range(2)]
        ex = Executor(backend="process", workers=2,
                      policy=RetryPolicy(retries=1, timeout=1.0,
                                         backoff=0.01))
        began = time.perf_counter()
        results = ex.map_tasks(specs)
        assert [r.value for r in results] == [0, 7]
        assert time.perf_counter() - began < 30.0  # not 60: hang reclaimed
        # At least one deadline blew; the rebuild it triggers may rescue
        # the other hung task before its own deadline expires.
        assert ex.stats.timeouts >= 1
        assert ex.stats.pool_rebuilds >= 1

    def test_hang_task_recovered_serial(self, chaos_env):
        chaos_env(f"hang_task:rate=1,value=5,seed={CHAOS_SEED}")
        ex = Executor(backend="serial",
                      policy=RetryPolicy(retries=1, timeout=0.3,
                                         backoff=0.01))
        results = ex.map_tasks([TaskSpec(fn="chaos_echo", seed=3)])
        assert results[0].value == 21
        assert ex.stats.timeouts == 1
        assert ex.stats.retries == 1

    def test_delay_task_slows_but_never_fails(self, chaos_env):
        chaos_env(f"delay_task:rate=1,value=20,seed={CHAOS_SEED},once=0")
        specs = [TaskSpec(fn="chaos_echo", seed=s) for s in range(3)]
        with obs.enabled_scope():
            ex = Executor(backend="serial")
            results = ex.map_tasks(specs)
            fired = obs.OBS.registry.counters.get("chaos.fired.delay_task", 0)
        assert [r.value for r in results] == [0, 7, 14]
        assert fired == 3
        assert ex.stats.wall_seconds >= 3 * 0.020

    def test_corrupt_cache_entry_evicted_and_recomputed(self, chaos_env,
                                                        tmp_path):
        spec = TaskSpec(fn="chaos_echo", seed=4)
        root = str(tmp_path / "cache")
        warm = Executor(backend="serial", cache=ArtifactCache(root=root))
        warm.map_tasks([spec])
        assert ArtifactCache(root=root).get(spec) is not None

        chaos_env(f"corrupt_cache:rate=1,seed={CHAOS_SEED}")
        ex = Executor(backend="serial", cache=ArtifactCache(root=root))
        results = ex.map_tasks([spec])
        assert results[0].value == 28   # recomputed, not poisoned
        assert ex.stats.cache_hits == 0
        assert ex.stats.computed == 1

        # The once-marker is claimed and the entry was rewritten: the
        # next read is a clean hit even with chaos still armed.
        again = Executor(backend="serial", cache=ArtifactCache(root=root))
        again.map_tasks([spec])
        assert again.stats.cache_hits == 1


# ---------------------------------------------------------------------------
# Serving under injected faults & overload
# ---------------------------------------------------------------------------

class TestServeChaos:
    def test_drop_conn_recovered_by_client_retry(self, chaos_env, tmp_path):
        chaos_env(f"drop_conn:rate=1,seed={CHAOS_SEED}")
        config = ServeConfig(backend="serial", cache=True,
                             cache_dir=str(tmp_path / "cache"))
        with ServerThread(config, agent=small_agent()) as handle:
            with SolveClient(handle.address, retries=1) as client:
                # First send is dropped mid-request; the resent line is
                # byte-identical, so its once-marker is already claimed
                # and the retry goes through.
                response = client.solve("ota_small", seed=0)
                assert response["result"]["area"] > 0

    def test_drop_conn_without_retries_surfaces(self, chaos_env, tmp_path):
        chaos_env(f"drop_conn:rate=1,seed={CHAOS_SEED + 1}")
        config = ServeConfig(backend="serial", cache=False)
        with ServerThread(config, agent=small_agent()) as handle:
            with SolveClient(handle.address, retries=0) as client:
                with pytest.raises(OSError):
                    client.solve("ota_small", seed=0)

    def test_admission_control_sheds_past_max_inflight(self):
        config = ServeConfig(backend="serial", cache=False, max_inflight=1)
        with ServerThread(config, agent=small_agent()) as handle:
            handle.server._admitted = 1  # one solve already admitted
            with SolveClient(handle.address) as client:
                response = client.request(
                    {"op": "solve", "circuit": "ota_small", "seed": 0})
                assert response["ok"] is False
                assert response["shed"] is True
                stats = client.stats()
                assert stats["shed"] == 1
            handle.server._admitted = 0
            with SolveClient(handle.address) as client:
                assert client.solve("ota_small", seed=0)["result"]["area"] > 0

    def test_deadline_exceeded_does_not_poison_the_compute(self, tmp_path):
        config = ServeConfig(backend="serial", cache=True,
                             cache_dir=str(tmp_path / "cache"))
        with ServerThread(config, agent=small_agent()) as handle:
            with SolveClient(handle.address) as client:
                hurried = client.request(
                    {"op": "solve", "circuit": "ota_small", "seed": 1,
                     "deadline_ms": 0.01})
                assert hurried["ok"] is False
                assert hurried["deadline_exceeded"] is True
                # The shielded compute kept running and filled the
                # cache; an unhurried ask gets the real answer.
                patient = client.solve("ota_small", seed=1)
                assert patient["result"]["area"] > 0
                stats = client.stats()
                assert stats["deadline_exceeded"] == 1

    def test_invalid_deadline_rejected(self):
        config = ServeConfig(backend="serial", cache=False)
        with ServerThread(config, agent=small_agent()) as handle:
            with SolveClient(handle.address) as client:
                response = client.request(
                    {"op": "solve", "circuit": "ota_small",
                     "deadline_ms": -5})
                assert response["ok"] is False

    def test_shutdown_drains_inflight_solve(self):
        config = ServeConfig(backend="serial", cache=False,
                             drain_timeout=30.0)
        results = []
        with ServerThread(config, agent=small_agent()) as handle:
            def work():
                with SolveClient(handle.address) as client:
                    results.append(client.solve("ota_small", seed=9))

            worker = threading.Thread(target=work)
            worker.start()
            time.sleep(0.2)  # let the request get in flight
        worker.join(timeout=60.0)
        assert not worker.is_alive()
        assert results and results[0]["result"]["area"] > 0

    def test_stats_exposes_resilience_counters(self):
        config = ServeConfig(backend="serial", cache=False)
        with ServerThread(config, agent=small_agent()) as handle:
            with SolveClient(handle.address) as client:
                stats = client.stats()
        for key in ("queue_depth", "shed", "deadline_exceeded",
                    "pool_restarts"):
            assert key in stats


# ---------------------------------------------------------------------------
# Vec-env workers under injected kills
# ---------------------------------------------------------------------------

def _valid_actions(observations):
    return [int(np.nonzero(obs_.action_mask)[0][0]) for obs_ in observations]


class TestVecEnvChaos:
    def test_kill_env_worker_respawn_keeps_fleet_stepping(self, chaos_env):
        chaos_env(f"kill_env_worker:rate=1,seed={CHAOS_SEED}")
        circuit = get_circuit("ota_small")
        with ProcessVecEnv([circuit, circuit], respawn=True) as venv:
            observations = venv.reset()
            observations, rewards, dones, infos = venv.step(
                _valid_actions(observations))
            assert all(bool(d) for d in dones)
            assert all(info.get("worker_crashed") for info in infos)
            # Respawned workers re-hit the same (env, step) site, whose
            # on-disk once-marker is claimed — the fleet keeps going.
            observations, _, dones, infos = venv.step(
                _valid_actions(observations))
            assert not any(info.get("worker_crashed") for info in infos)

    def test_kill_env_worker_without_respawn_is_typed(self, chaos_env):
        chaos_env(f"kill_env_worker:rate=1,seed={CHAOS_SEED + 1}")
        circuit = get_circuit("ota_small")
        with ProcessVecEnv([circuit]) as venv:
            observations = venv.reset()
            with pytest.raises(WorkerCrashedError) as info:
                venv.step(_valid_actions(observations))
            assert info.value.index == 0
            assert info.value.exitcode in (KILL_EXIT_CODE, -signal.SIGKILL)


# ---------------------------------------------------------------------------
# Crash-resumable sweeps: mid-sweep kill, then bit-identical resume
# ---------------------------------------------------------------------------

_SWEEP_SCRIPT = textwrap.dedent("""
    import sys
    from repro.engine import ArtifactCache, Executor, SweepSpec, run_sweep
    cache_dir, journal = sys.argv[1], sys.argv[2]
    spec = SweepSpec(methods=["sa"], circuits=["ota_small"],
                     seeds=range(4), config={"moves_per_temperature": 4})
    ex = Executor(backend="serial", cache=ArtifactCache(root=cache_dir))
    run_sweep(spec, executor=ex, journal_path=journal)
    print("completed-without-kill")
""")


class TestSweepResume:
    def _spec(self):
        return SweepSpec(methods=["sa"], circuits=["ota_small"],
                         seeds=range(4),
                         config={"moves_per_temperature": 4})

    def _kill_seed(self, keys, victim_index):
        """The first chaos seed whose schedule kills exactly one cell —
        ``victim_index`` — at rate 0.25 (a pure-hash search, so the CI
        seed matrix shifts which schedule is exercised)."""
        rate = 0.25
        for seed in range(CHAOS_SEED * 1000, CHAOS_SEED * 1000 + 5000):
            fired = [k for k in keys
                     if _fraction(seed, "kill_worker", k) < rate]
            if fired == [keys[victim_index]]:
                return seed
        raise AssertionError("no suitable kill seed found")

    def test_mid_sweep_kill_then_resume_is_bit_identical(self, tmp_path,
                                                         monkeypatch):
        monkeypatch.delenv(chaos.ENV_VAR, raising=False)
        chaos.uninstall()
        spec = self._spec()
        keys = [s.content_hash() for s in spec.expand()]
        kill_seed = self._kill_seed(keys, victim_index=2)

        cache_dir = str(tmp_path / "cache")
        journal_path = str(tmp_path / "journal.jsonl")
        env = dict(os.environ)
        env["REPRO_CHAOS"] = f"kill_worker:rate=0.25,seed={kill_seed}"
        env["REPRO_CHAOS_DIR"] = str(tmp_path / "markers")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p)
        proc = subprocess.run(
            [sys.executable, "-c", _SWEEP_SCRIPT, cache_dir, journal_path],
            env=env, capture_output=True, text=True, timeout=300,
        )
        # The serial sweep process itself is the kill_worker victim: it
        # must die mid-sweep with the sentinel code, cells 0-1 journaled.
        assert proc.returncode == KILL_EXIT_CODE, proc.stderr
        assert "completed-without-kill" not in proc.stdout
        journaled = SweepJournal(journal_path,
                                 sweep_hash=spec.content_hash()).load()
        assert journaled == set(keys[:2])

        # Warm resume, no chaos: zero completed cells recomputed.
        ex = Executor(backend="serial",
                      cache=ArtifactCache(root=cache_dir))
        resumed = run_sweep(spec, executor=ex, journal_path=journal_path,
                            resume=True)
        assert resumed.resumed == 2
        assert ex.stats.cache_hits == 2   # journal and cache agree
        assert ex.stats.computed == 2     # only the unfinished tail

        # Bit-identical to an uninterrupted run (fresh cache, fresh
        # journal): every deterministic per-run metric matches exactly.
        ref_ex = Executor(backend="serial",
                          cache=ArtifactCache(root=str(tmp_path / "ref")))
        reference = run_sweep(spec, executor=ref_ex)
        resumed_runs = [(r.value.hpwl, r.value.dead_space, r.value.reward)
                        for r in resumed.results]
        reference_runs = [(r.value.hpwl, r.value.dead_space, r.value.reward)
                          for r in reference.results]
        assert resumed_runs == reference_runs
        assert (resumed.summary().split(" in ")[0]
                == "4 cells (2 from cache, 2 resumed)")

        # A second resume finds everything journaled: nothing computed.
        ex2 = Executor(backend="serial",
                       cache=ArtifactCache(root=cache_dir))
        full = run_sweep(spec, executor=ex2, journal_path=journal_path,
                         resume=True)
        assert full.resumed == 4
        assert ex2.stats.computed == 0
        assert ex2.stats.cache_hits == 4

    def test_resume_distrusts_journal_when_cache_is_gone(self, tmp_path):
        spec = self._spec()
        journal_path = str(tmp_path / "journal.jsonl")
        cache_dir = str(tmp_path / "cache")
        ex = Executor(backend="serial", cache=ArtifactCache(root=cache_dir))
        run_sweep(spec, executor=ex, journal_path=journal_path)

        # Journal says done, but the artifacts vanished (cache cleared):
        # resume must recompute rather than trust the journal alone.
        fresh_cache = str(tmp_path / "elsewhere")
        ex2 = Executor(backend="serial",
                       cache=ArtifactCache(root=fresh_cache))
        result = run_sweep(spec, executor=ex2, journal_path=journal_path,
                           resume=True)
        assert result.resumed == 0
        assert ex2.stats.computed == 4

    def test_journal_stamp_ignores_other_grids(self, tmp_path):
        spec = self._spec()
        journal_path = str(tmp_path / "journal.jsonl")
        cache_dir = str(tmp_path / "cache")
        ex = Executor(backend="serial", cache=ArtifactCache(root=cache_dir))
        run_sweep(spec, executor=ex, journal_path=journal_path)

        # Same journal path, different grid: completions must not carry.
        other = SweepSpec(methods=["sa"], circuits=["ota_small"],
                          seeds=range(2),
                          config={"moves_per_temperature": 8})
        ex2 = Executor(backend="serial",
                       cache=ArtifactCache(root=cache_dir))
        result = run_sweep(other, executor=ex2, journal_path=journal_path,
                           resume=True)
        assert result.resumed == 0
        assert ex2.stats.computed == 2
