"""Tests for the masked distribution, policy network and rollout buffer."""

import numpy as np
import pytest

from repro.config import ACTION_SPACE, EMBEDDING_DIM
from repro.nn import Tensor
from repro.rl import (
    ActorCritic,
    CnnExtractor,
    DeconvPolicyHead,
    MaskedCategorical,
    RolloutBuffer,
)


class TestMaskedCategorical:
    def _dist(self, batch=2, actions=6, allowed=None, seed=0):
        rng = np.random.default_rng(seed)
        logits = Tensor(rng.normal(size=(batch, actions)), requires_grad=True)
        mask = np.zeros((batch, actions), dtype=bool)
        allowed = allowed or [0, 2, 5]
        mask[:, allowed] = True
        return MaskedCategorical(logits, mask), logits, mask

    def test_masked_actions_have_zero_probability(self):
        dist, _, mask = self._dist()
        probs = dist.probs
        assert np.allclose(probs[~mask], 0.0)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_sampling_respects_mask(self):
        dist, _, mask = self._dist()
        rng = np.random.default_rng(0)
        for _ in range(50):
            actions = dist.sample(rng)
            assert mask[np.arange(len(actions)), actions].all()

    def test_mode_is_argmax_of_valid(self):
        logits = Tensor(np.array([[10.0, 0.0, 5.0]]))
        mask = np.array([[False, True, True]])
        dist = MaskedCategorical(logits, mask)
        assert dist.mode()[0] == 2  # 10.0 is masked out

    def test_log_prob_gradient_flows(self):
        dist, logits, _ = self._dist()
        lp = dist.log_prob(np.array([0, 2]))
        lp.sum().backward()
        assert logits.grad is not None

    def test_entropy_bounds(self):
        dist, _, mask = self._dist()
        ent = dist.entropy().numpy()
        max_entropy = np.log(mask[0].sum())
        assert (ent >= -1e-9).all()
        assert (ent <= max_entropy + 1e-9).all()

    def test_uniform_logits_give_max_entropy(self):
        logits = Tensor(np.zeros((1, 8)))
        mask = np.ones((1, 8), dtype=bool)
        mask[0, 4:] = False
        dist = MaskedCategorical(logits, mask)
        assert dist.entropy().numpy()[0] == pytest.approx(np.log(4))

    def test_rejects_all_masked_row(self):
        logits = Tensor(np.zeros((1, 4)))
        with pytest.raises(ValueError):
            MaskedCategorical(logits, np.zeros((1, 4), dtype=bool))

    def test_rejects_shape_mismatch(self):
        logits = Tensor(np.zeros((1, 4)))
        with pytest.raises(ValueError):
            MaskedCategorical(logits, np.ones((1, 5), dtype=bool))


class TestPolicyNetwork:
    def test_extractor_output_dim(self):
        rng = np.random.default_rng(0)
        extractor = CnnExtractor(rng=rng)
        out = extractor(Tensor(rng.normal(size=(2, 6, 32, 32))))
        assert out.shape == (2, 512)

    def test_policy_head_action_space(self):
        rng = np.random.default_rng(0)
        head = DeconvPolicyHead(ActorCritic.STATE_DIM, rng=rng)
        out = head(Tensor(rng.normal(size=(2, ActorCritic.STATE_DIM))))
        assert out.shape == (2, ACTION_SPACE)

    def test_actor_critic_forward(self):
        rng = np.random.default_rng(0)
        model = ActorCritic(rng=rng)
        masks = Tensor(rng.normal(size=(3, 6, 32, 32)))
        node = Tensor(rng.normal(size=(3, EMBEDDING_DIM)))
        graph = Tensor(rng.normal(size=(3, EMBEDDING_DIM)))
        logits, values = model(masks, node, graph)
        assert logits.shape == (3, ACTION_SPACE)
        assert values.shape == (3,)

    def test_gradients_reach_all_parameters(self):
        rng = np.random.default_rng(1)
        model = ActorCritic(rng=rng)
        masks = Tensor(rng.normal(size=(2, 6, 32, 32)))
        node = Tensor(rng.normal(size=(2, EMBEDDING_DIM)))
        graph = Tensor(rng.normal(size=(2, EMBEDDING_DIM)))
        logits, values = model(masks, node, graph)
        loss = (logits * logits).mean() + (values * values).mean()
        loss.backward()
        missing = [name for name, p in model.named_parameters() if p.grad is None]
        assert missing == [], f"no gradient for: {missing}"

    def test_embeddings_change_policy(self):
        """The graph conditioning must actually reach the logits."""
        rng = np.random.default_rng(2)
        model = ActorCritic(rng=rng)
        masks = Tensor(rng.normal(size=(1, 6, 32, 32)))
        node_a = Tensor(rng.normal(size=(1, EMBEDDING_DIM)))
        node_b = Tensor(rng.normal(size=(1, EMBEDDING_DIM)))
        graph = Tensor(rng.normal(size=(1, EMBEDDING_DIM)))
        logits_a, _ = model(masks, node_a, graph)
        logits_b, _ = model(masks, node_b, graph)
        assert not np.allclose(logits_a.numpy(), logits_b.numpy())


class TestRolloutBuffer:
    def _filled(self, steps=4, envs=2):
        buf = RolloutBuffer(steps, envs, EMBEDDING_DIM)
        rng = np.random.default_rng(0)
        for t in range(steps):
            mask = np.zeros((envs, ACTION_SPACE), dtype=bool)
            mask[:, :10] = True
            buf.add(
                masks=rng.normal(size=(envs, 6, 32, 32)),
                node_emb=rng.normal(size=(envs, EMBEDDING_DIM)),
                graph_emb=rng.normal(size=(envs, EMBEDDING_DIM)),
                action_mask=mask,
                actions=rng.integers(0, 10, size=envs),
                log_probs=rng.normal(size=envs),
                values=rng.normal(size=envs),
                rewards=rng.normal(size=envs),
                dones=np.array([t == steps - 1] * envs),
            )
        return buf

    def test_add_until_full(self):
        buf = self._filled()
        assert buf.full
        with pytest.raises(RuntimeError):
            buf.add(*[None] * 9)

    def test_gae_before_minibatch_required(self):
        buf = self._filled()
        with pytest.raises(RuntimeError):
            next(buf.iter_minibatches(4, np.random.default_rng(0)))

    def test_gae_computation_simple_case(self):
        """Single env, no dones, gamma=1, lambda=1: advantage = sum of
        future rewards + last value - value (telescoping check)."""
        buf = RolloutBuffer(3, 1, EMBEDDING_DIM)
        rewards = [1.0, 2.0, 3.0]
        values = [0.5, 0.5, 0.5]
        for t in range(3):
            mask = np.ones((1, ACTION_SPACE), dtype=bool)
            buf.add(np.zeros((1, 6, 32, 32)), np.zeros((1, EMBEDDING_DIM)),
                    np.zeros((1, EMBEDDING_DIM)), mask, np.zeros(1, dtype=int),
                    np.zeros(1), np.array([values[t]]), np.array([rewards[t]]),
                    np.array([False]))
        buf.compute_gae(last_values=np.array([0.0]), gamma=1.0, lam=1.0)
        expected_adv0 = (1 + 2 + 3 + 0.0) - 0.5
        assert buf.advantages[0, 0] == pytest.approx(expected_adv0)
        assert buf.returns[0, 0] == pytest.approx(expected_adv0 + 0.5)

    def test_done_cuts_gae(self):
        buf = RolloutBuffer(2, 1, EMBEDDING_DIM)
        mask = np.ones((1, ACTION_SPACE), dtype=bool)
        buf.add(np.zeros((1, 6, 32, 32)), np.zeros((1, EMBEDDING_DIM)),
                np.zeros((1, EMBEDDING_DIM)), mask, np.zeros(1, dtype=int),
                np.zeros(1), np.array([0.0]), np.array([1.0]), np.array([True]))
        buf.add(np.zeros((1, 6, 32, 32)), np.zeros((1, EMBEDDING_DIM)),
                np.zeros((1, EMBEDDING_DIM)), mask, np.zeros(1, dtype=int),
                np.zeros(1), np.array([0.0]), np.array([5.0]), np.array([False]))
        buf.compute_gae(last_values=np.array([100.0]), gamma=0.9, lam=1.0)
        # Step 0 ended an episode: its advantage sees only its own reward.
        assert buf.advantages[0, 0] == pytest.approx(1.0)

    def test_minibatches_cover_all_samples(self):
        buf = self._filled(steps=4, envs=2)
        buf.compute_gae(np.zeros(2), gamma=0.99, lam=0.95)
        seen = 0
        for batch in buf.iter_minibatches(3, np.random.default_rng(0)):
            seen += len(batch.actions)
        assert seen == 8

    def test_advantages_normalized(self):
        buf = self._filled(steps=8, envs=2)
        buf.compute_gae(np.zeros(2), gamma=0.99, lam=0.95)
        all_adv = np.concatenate([
            b.advantages for b in buf.iter_minibatches(16, np.random.default_rng(0))
        ])
        assert abs(all_adv.mean()) < 1e-6
        assert abs(all_adv.std() - 1.0) < 1e-6
