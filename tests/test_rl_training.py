"""Integration tests: PPO training loop, HCL schedule, agent inference.

Kept deliberately small (tiny rollouts, few iterations) — these verify the
machinery end to end, not convergence; the benchmarks exercise longer runs.
"""

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.config import TrainConfig
from repro.floorplan import FloorplanEnv, VecEnv
from repro.rl import FloorplanAgent, MaskedPPO, TrainHistory


def tiny_config(**overrides):
    defaults = dict(
        num_envs=2, rollout_steps=16, ppo_epochs=1, minibatch_size=16,
        learning_rate=3e-4, seed=0, episodes_per_circuit=4,
    )
    defaults.update(overrides)
    return TrainConfig(**defaults)


@pytest.fixture(scope="module")
def trained_agent():
    """One tiny agent shared across inference tests (training is slow)."""
    agent = FloorplanAgent(config=tiny_config())
    vec = VecEnv([FloorplanEnv(get_circuit("ota_small")) for _ in range(2)])
    agent.ppo.train(vec, iterations=2)
    return agent


class TestPPOLoop:
    def test_collect_fills_buffer_and_counts_episodes(self):
        agent = FloorplanAgent(config=tiny_config())
        vec = VecEnv([FloorplanEnv(get_circuit("ota_small")) for _ in range(2)])
        obs = vec.reset()
        buffer, next_obs, episodes = agent.ppo.collect(vec, obs)
        assert buffer.full
        assert episodes > 0
        assert len(next_obs) == 2

    def test_update_returns_stats(self):
        agent = FloorplanAgent(config=tiny_config())
        vec = VecEnv([FloorplanEnv(get_circuit("ota_small")) for _ in range(2)])
        obs = vec.reset()
        buffer, _, _ = agent.ppo.collect(vec, obs)
        stats = agent.ppo.update(buffer)
        for key in ("policy_loss", "value_loss", "entropy", "approx_kl", "clip_fraction"):
            assert np.isfinite(stats[key]), key

    def test_train_records_history(self, trained_agent):
        # trained_agent fixture ran 2 iterations
        assert trained_agent.ppo.episodes_total > 0
        assert np.isfinite(trained_agent.ppo.episode_reward_mean)

    def test_episode_end_callback(self):
        agent = FloorplanAgent(config=tiny_config())
        vec = VecEnv([FloorplanEnv(get_circuit("ota_small")) for _ in range(2)])
        obs = vec.reset()
        seen = []
        agent.ppo.collect(vec, obs, on_episode_end=lambda i, ret, info: seen.append(ret))
        assert len(seen) > 0
        assert all(np.isfinite(r) for r in seen)

    def test_update_changes_parameters(self):
        agent = FloorplanAgent(config=tiny_config())
        vec = VecEnv([FloorplanEnv(get_circuit("ota_small")) for _ in range(2)])
        obs = vec.reset()
        before = {n: p.data.copy() for n, p in agent.policy.named_parameters()}
        buffer, _, _ = agent.ppo.collect(vec, obs)
        agent.ppo.update(buffer)
        changed = any(
            not np.allclose(before[n], p.data) for n, p in agent.policy.named_parameters()
        )
        assert changed


class TestHCL:
    def test_train_hcl_advances_through_circuits(self):
        agent = FloorplanAgent(config=tiny_config(rollout_steps=12))
        circuits = [get_circuit("ota_small"), get_circuit("bias_small")]
        record = agent.train_hcl(circuits, episodes_per_circuit=4)
        assert len(record.history.iterations) >= 1
        assert record.stage_starts[0] == 0
        curve = record.history.reward_curve()
        assert np.isfinite(curve).all()

    def test_kl_curve_available(self):
        agent = FloorplanAgent(config=tiny_config(rollout_steps=12))
        record = agent.train_hcl([get_circuit("ota_small")], episodes_per_circuit=4)
        kl = record.history.kl_curve()
        assert (kl >= 0).all()


class TestAgentInference:
    def test_solve_produces_valid_floorplan(self, trained_agent):
        result = trained_agent.solve(get_circuit("ota_small"), method_name="test")
        assert len(result.rects) == 3
        assert result.area > 0
        assert 0 <= result.dead_space < 1
        assert result.method == "test"

    def test_solve_zero_shot_on_unseen_circuit(self, trained_agent):
        """Transfer: the policy must emit legal floorplans for circuits it
        never saw (different node counts) — the R-GCN makes this possible."""
        result = trained_agent.solve(get_circuit("rs_latch"))
        assert len(result.rects) == 7

    def test_solve_respects_constraints(self, trained_agent):
        circuit = get_circuit("rs_latch")  # has symmetry pairs
        result = trained_agent.solve(circuit)
        # reconstruct rows for the symmetric pairs: same y within a cell
        rows = {r.index: r.y for r in result.rects}
        for c in circuit.constraints:
            if len(c.blocks) == 2 and c.kind.value == "sym_v":
                a, b = c.blocks
                assert abs(rows[a] - rows[b]) < 1e-6

    def test_fine_tune_runs(self, trained_agent):
        history = trained_agent.fine_tune(get_circuit("ota_small"), episodes=2)
        assert len(history.iterations) >= 1

    def test_fine_tune_rejects_zero_episodes(self, trained_agent):
        with pytest.raises(ValueError):
            trained_agent.fine_tune(get_circuit("ota_small"), episodes=0)

    def test_save_load_roundtrip(self, trained_agent, tmp_path):
        prefix = str(tmp_path / "agent")
        trained_agent.save(prefix)
        fresh = FloorplanAgent(config=tiny_config(seed=123))
        fresh.load(prefix)
        ckt = get_circuit("ota_small")
        a = trained_agent.solve(ckt)
        b = fresh.solve(ckt)
        assert a.reward == pytest.approx(b.reward)
        assert [(r.x, r.y) for r in a.rects] == [(r.x, r.y) for r in b.rects]
