"""Tests for the routability extension (paper Sec. VI future work)."""

import numpy as np
import pytest

from repro.baselines import SAConfig, simulated_annealing
from repro.circuits import get_circuit
from repro.floorplan import FloorplanEnv, FloorplanState
from repro.floorplan.routability import (
    RoutabilityEstimate,
    estimate_routability,
    routability_reward,
)
from repro.routing import congestion, route_circuit


def _pack_state(name="ota2", count=None):
    state = FloorplanState(get_circuit(name))
    placed = 0
    while not state.done and (count is None or placed < count):
        done = False
        for gy in range(32):
            for gx in range(32):
                if state.can_place(1, gx, gy):
                    state.place(1, gx, gy)
                    done = True
                    break
            if done:
                break
        if not done:
            break
        placed += 1
    return state


class TestEstimate:
    def test_empty_placement_zero_cost(self):
        state = FloorplanState(get_circuit("ota2"))
        est = estimate_routability(state)
        assert est.peak == 0
        assert est.cost == 0.0

    def test_full_placement_positive_demand(self):
        state = _pack_state()
        est = estimate_routability(state)
        assert est.peak >= 1
        assert est.demand.shape == (16, 16)

    def test_overflow_fraction_bounds(self):
        est = estimate_routability(_pack_state())
        assert 0.0 <= est.overflow_fraction <= 1.0

    def test_reward_negative_when_congestion_grows(self):
        before = RoutabilityEstimate(np.zeros((4, 4), dtype=int), 0, 0.0)
        after = RoutabilityEstimate(np.full((4, 4), 5), 5, 1.0)
        assert routability_reward(before, after) < 0

    def test_reward_scales_with_weight(self):
        before = RoutabilityEstimate(np.zeros((4, 4), dtype=int), 0, 0.0)
        after = RoutabilityEstimate(np.full((4, 4), 5), 5, 1.0)
        assert routability_reward(before, after, 2.0) == pytest.approx(
            2 * routability_reward(before, after, 1.0))


class TestProxyCorrelation:
    def test_proxy_tracks_post_route_congestion(self):
        """Denser packings with more net overlap must score a higher proxy
        cost than spread placements with the same circuit (sanity that the
        proxy measures what the router later sees)."""
        ckt = get_circuit("ota2")
        tight = simulated_annealing(ckt, SAConfig(moves_per_temperature=25, seed=0,
                                                  spacing=0.0))
        loose = simulated_annealing(ckt, SAConfig(moves_per_temperature=25, seed=0,
                                                  spacing=0.5))
        # Proxy from net bboxes over block centers:
        from repro.floorplan.routability import RoutabilityEstimate

        def proxy(rects):
            centers = {r.index: r.center for r in rects}
            import numpy as np
            side = max(max(r.x2 for r in rects), max(r.y2 for r in rects))
            res = 16
            cell = side / res
            demand = np.zeros((res, res), dtype=int)
            for net in ckt.nets:
                xs = [centers[b][0] for b in net.blocks]
                ys = [centers[b][1] for b in net.blocks]
                x1, x2 = int(min(xs) / cell), int(min(max(xs) / cell, res - 1))
                y1, y2 = int(min(ys) / cell), int(min(max(ys) / cell, res - 1))
                demand[y1:y2 + 1, x1:x2 + 1] += 1
            return demand.max()

        assert proxy(tight.rects) >= proxy(loose.rects) - 1


class TestEnvIntegration:
    def test_default_reward_unchanged(self):
        """weight=0 must reproduce the paper's reward to the bit."""
        rng = np.random.default_rng(0)
        base = FloorplanEnv(get_circuit("ota_small"))
        ext = FloorplanEnv(get_circuit("ota_small"), routability_weight=0.0)
        obs_a, obs_b = base.reset(), ext.reset()
        total_a = total_b = 0.0
        done = False
        while not done:
            valid = np.nonzero(obs_a.action_mask)[0]
            action = int(rng.choice(valid))
            obs_a, ra, done, _ = base.step(action)
            obs_b, rb, _, _ = ext.step(action)
            total_a += ra
            total_b += rb
        assert total_a == pytest.approx(total_b)

    def test_routability_weight_changes_reward(self):
        rng = np.random.default_rng(3)
        rewards = {}
        for weight in (0.0, 5.0):
            env = FloorplanEnv(get_circuit("ota2"), routability_weight=weight)
            obs = env.reset()
            total, done = 0.0, False
            steps = []
            rng2 = np.random.default_rng(3)
            while not done:
                valid = np.nonzero(obs.action_mask)[0]
                action = int(rng2.choice(valid))
                obs, r, done, info = env.step(action)
                total += r
            rewards[weight] = total
        # With congestion present, weighted total differs from baseline.
        assert rewards[0.0] != rewards[5.0]

    def test_routability_resets_between_episodes(self):
        env = FloorplanEnv(get_circuit("ota_small"), routability_weight=1.0)
        env.reset()
        assert env._routability is None
