"""Tests for OARSMT, global routing, channels, detailed routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import SAConfig, simulated_annealing
from repro.baselines.common import PlacedRect
from repro.circuits import get_circuit
from repro.routing import (
    Obstacle,
    Point,
    Segment,
    SteinerTree,
    build_escape_graph,
    congestion,
    define_channels,
    detailed_route,
    merge_collinear,
    oarsmt,
    pin_point,
    route_circuit,
)


class TestGeometry:
    def test_segment_must_be_rectilinear(self):
        with pytest.raises(ValueError):
            Segment(0, 0, 1, 1)

    def test_segment_length(self):
        assert Segment(0, 0, 3, 0).length == 3
        assert Segment(1, 1, 1, 5).length == 4

    def test_canonical_orders_endpoints(self):
        s = Segment(5, 0, 2, 0).canonical()
        assert (s.x1, s.x2) == (2, 5)

    def test_obstacle_contains_strict_excludes_boundary(self):
        ob = Obstacle(0, 0, 2, 2)
        assert ob.contains_strict(1, 1)
        assert not ob.contains_strict(0, 1)
        assert not ob.contains_strict(2, 2)

    def test_obstacle_blocks_crossing_segment(self):
        ob = Obstacle(1, 1, 3, 3)
        assert ob.blocks_segment(Segment(0, 2, 4, 2))
        assert not ob.blocks_segment(Segment(0, 0, 4, 0))  # below
        assert not ob.blocks_segment(Segment(0, 1, 4, 1))  # on boundary

    def test_merge_collinear(self):
        segs = [Segment(0, 0, 1, 0), Segment(1, 0, 3, 0), Segment(0, 1, 1, 1)]
        merged = merge_collinear(segs)
        lengths = sorted(s.length for s in merged)
        assert lengths == [1, 3]

    def test_merge_drops_zero_length(self):
        assert merge_collinear([Segment(1, 1, 1, 1)]) == []


class TestOARSMT:
    def test_two_terminal_route(self):
        tree = oarsmt("n", [Point(0, 0), Point(4, 3)])
        assert tree.length == pytest.approx(7.0)
        assert tree.covers_terminals()

    def test_needs_two_terminals(self):
        with pytest.raises(ValueError):
            oarsmt("n", [Point(0, 0)])

    def test_terminal_inside_obstacle_rejected(self):
        with pytest.raises(ValueError):
            oarsmt("n", [Point(1, 1), Point(5, 5)], [Obstacle(0, 0, 2, 2)])

    def test_route_detours_around_obstacle(self):
        """Obstacle on the straight path forces a longer route."""
        terminals = [Point(0, 1), Point(6, 1)]
        blocked = oarsmt("n", terminals, [Obstacle(2, 0, 4, 2)])
        free = oarsmt("n", terminals, [])
        assert blocked.length > free.length
        assert blocked.covers_terminals()
        # No segment may cross the obstacle interior.
        ob = Obstacle(2, 0, 4, 2)
        assert not any(ob.blocks_segment(s) for s in blocked.segments)

    def test_multi_terminal_steiner_beats_star(self):
        """Steiner tree should not exceed the star from the first terminal."""
        terminals = [Point(0, 0), Point(10, 0), Point(5, 5), Point(5, -5)]
        tree = oarsmt("n", terminals)
        star = sum(terminals[0].manhattan(t) for t in terminals[1:])
        assert tree.length <= star + 1e-9

    def test_enclosed_terminal_raises(self):
        """A terminal sealed inside a ring of overlapping walls has no
        route (boundary routing cannot cross wall interiors)."""
        terminals = [Point(5, 5), Point(20, 20)]
        ring = [
            Obstacle(2, 2, 4, 8),   # left
            Obstacle(6, 2, 8, 8),   # right
            Obstacle(2, 2, 8, 4),   # bottom
            Obstacle(2, 6, 8, 8),   # top
        ]
        with pytest.raises(RuntimeError):
            oarsmt("n", terminals, ring)

    @given(st.lists(st.tuples(st.integers(0, 20), st.integers(0, 20)),
                    min_size=2, max_size=5, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_tree_length_lower_bounded_by_bbox(self, coords):
        """HPWL of the terminals lower-bounds any rectilinear tree."""
        terminals = [Point(float(x), float(y)) for x, y in coords]
        tree = oarsmt("n", terminals)
        xs = [t.x for t in terminals]
        ys = [t.y for t in terminals]
        hpwl = (max(xs) - min(xs)) + (max(ys) - min(ys))
        assert tree.length >= hpwl - 1e-9


class TestEscapeGraph:
    def test_nodes_exclude_obstacle_interior(self):
        graph = build_escape_graph(
            [Point(0, 0), Point(4, 4)], [Obstacle(1, 1, 3, 3)]
        )
        assert (2.0, 2.0) not in graph or not any(
            True for _ in graph.neighbors((2.0, 2.0))
        ) or (2.0, 2.0) not in graph.nodes

    def test_edges_have_manhattan_weights(self):
        graph = build_escape_graph([Point(0, 0), Point(3, 0)], [])
        assert graph[(0.0, 0.0)][(3.0, 0.0)]["weight"] == 3.0


def _placed_ota(seed=0):
    ckt = get_circuit("ota1")
    result = simulated_annealing(ckt, SAConfig(
        moves_per_temperature=10, cooling=0.8, seed=seed))
    return ckt, result.rects


class TestGlobalRouter:
    def test_routes_all_nets(self):
        ckt, rects = _placed_ota()
        route = route_circuit(ckt, rects)
        assert route.num_nets == len(ckt.nets)
        assert route.total_wirelength > 0
        for tree in route.trees.values():
            assert tree.covers_terminals()

    def test_conduits_carry_preferred_layers(self):
        ckt, rects = _placed_ota()
        route = route_circuit(ckt, rects)
        for conduit in route.conduits:
            if conduit.segment.is_horizontal and conduit.segment.length > 0:
                assert conduit.layer == "metal3"
            elif conduit.segment.is_vertical and conduit.segment.length > 0:
                assert conduit.layer == "metal2"

    def test_pin_point_on_boundary(self):
        rect = PlacedRect(0, 0, 0.0, 0.0, 4.0, 2.0)
        pin = pin_point(rect, toward=(10.0, 1.0))
        assert pin.x == pytest.approx(4.0)  # right edge
        assert pin.y == pytest.approx(1.0)

    def test_incomplete_placement_rejected(self):
        ckt, rects = _placed_ota()
        with pytest.raises(ValueError):
            route_circuit(ckt, rects[:-1])

    def test_routing_without_obstacles(self):
        """Both modes must route everything; lengths stay comparable (the
        Steiner approximation is not exactly monotone in obstacle removal,
        so only a loose factor is a valid invariant)."""
        ckt, rects = _placed_ota()
        free = route_circuit(ckt, rects, avoid_blocks=False)
        avoided = route_circuit(ckt, rects, avoid_blocks=True)
        assert free.num_nets == avoided.num_nets == len(ckt.nets)
        assert free.total_wirelength <= 2.0 * avoided.total_wirelength


class TestChannelsAndCongestion:
    def test_congestion_map_shapes(self):
        ckt, rects = _placed_ota()
        route = route_circuit(ckt, rects)
        cmap = congestion(rects, route, resolution=32)
        assert cmap.demand.shape == cmap.free.shape
        assert cmap.max_demand >= 1

    def test_block_cells_marked_not_free(self):
        ckt, rects = _placed_ota()
        route = route_circuit(ckt, rects)
        cmap = congestion(rects, route, resolution=32)
        assert (~cmap.free).any()

    def test_channels_follow_conduits(self):
        ckt, rects = _placed_ota()
        route = route_circuit(ckt, rects)
        channels = define_channels(rects, route)
        nonzero = [c for c in route.conduits if c.segment.length > 0]
        assert len(channels) == len(nonzero)
        for ch in channels:
            assert ch.width > 0
            assert ch.capacity >= 0

    def test_empty_placement_rejected(self):
        ckt, rects = _placed_ota()
        route = route_circuit(ckt, rects)
        with pytest.raises(ValueError):
            congestion([], route)


class TestDetailedRoute:
    def test_wires_generated_for_all_conduits(self):
        ckt, rects = _placed_ota()
        route = route_circuit(ckt, rects)
        detail = detailed_route(route)
        assert len(detail.wires) == len(route.conduits)
        assert detail.total_wire_length > 0

    def test_different_nets_on_same_track_get_offsets(self):
        from repro.routing.global_router import Conduit, GlobalRoute

        route = GlobalRoute(circuit_name="t")
        route.conduits = [
            Conduit("a", Segment(0, 5, 10, 5), "metal3"),
            Conduit("b", Segment(2, 5, 8, 5), "metal3"),
        ]
        detail = detailed_route(route)
        ya = [w for w in detail.wires if w.net == "a"][0]
        yb = [w for w in detail.wires if w.net == "b"][0]
        assert ya.y1 != yb.y1  # spread to different tracks

    def test_vias_inserted_at_layer_changes(self):
        from repro.routing.global_router import Conduit, GlobalRoute

        route = GlobalRoute(circuit_name="t")
        route.conduits = [
            Conduit("n", Segment(0, 0, 5, 0), "metal3"),
            Conduit("n", Segment(5, 0, 5, 4), "metal2"),
        ]
        detail = detailed_route(route)
        assert len(detail.vias) == 1
        via = detail.vias[0]
        assert via.lower_layer == "metal2"
        assert via.upper_layer == "metal3"

    def test_wires_of_filters_by_net(self):
        ckt, rects = _placed_ota()
        route = route_circuit(ckt, rects)
        detail = detailed_route(route)
        net = ckt.nets[0].name
        assert all(w.net == net for w in detail.wires_of(net))
