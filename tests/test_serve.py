"""Tests for the solve service (repro.serve): batcher, protocol, server.

Every live-server test binds an ephemeral port (``ServeConfig.port=0``
through :class:`ServerThread`), so parallel test runs never collide.
Serving *determinism* (bit-identical answers across serial / concurrent
/ cached paths) lives in ``tests/test_determinism.py``.
"""

import asyncio
import json
import socket
import threading

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.config import TrainConfig
from repro.engine import TaskSpec
from repro.rl import FloorplanAgent
from repro.serve import (
    MicroBatcher,
    ProtocolError,
    ServeConfig,
    ServerThread,
    SolveClient,
    SolveRequest,
    circuit_fingerprint,
)
from repro.serve.protocol import parse_request, parse_solve


def small_agent(seed: int = 0) -> FloorplanAgent:
    return FloorplanAgent(config=TrainConfig(
        num_envs=2, rollout_steps=16, ppo_epochs=1, minibatch_size=8, seed=seed,
    ))


# ---------------------------------------------------------------------------
# MicroBatcher
# ---------------------------------------------------------------------------

class TestMicroBatcher:
    def test_batch_of_one_flushes_after_max_wait(self):
        """An idle service must answer a lone request, not wait forever."""
        async def run():
            batches = []

            async def handler(items):
                batches.append(list(items))
                return [item * 2 for item in items]

            batcher = MicroBatcher(handler, max_batch=8, max_wait=0.01)
            batcher.start()
            try:
                result = await asyncio.wait_for(batcher.submit(21), timeout=5)
            finally:
                await batcher.stop()
            assert result == 42
            assert batches == [[21]]

        asyncio.run(run())

    def test_concurrent_submits_coalesce_up_to_max_batch(self):
        async def run():
            batches = []

            async def handler(items):
                await asyncio.sleep(0)  # let producers queue up
                batches.append(len(items))
                return [item + 100 for item in items]

            batcher = MicroBatcher(handler, max_batch=4, max_wait=0.05)
            batcher.start()
            try:
                results = await asyncio.gather(
                    *(batcher.submit(i) for i in range(10))
                )
            finally:
                await batcher.stop()
            assert results == [i + 100 for i in range(10)]
            assert max(batches) <= 4       # cap respected
            assert len(batches) < 10       # and coalescing actually happened

        asyncio.run(run())

    def test_cancelled_item_dropped_others_served(self):
        """A client disconnect mid-flight must not poison the batch."""
        async def run():
            seen = []

            async def handler(items):
                seen.append(list(items))
                return [item for item in items]

            batcher = MicroBatcher(handler, max_batch=4, max_wait=0.05)
            batcher.start()
            try:
                doomed = asyncio.ensure_future(batcher.submit("doomed"))
                await asyncio.sleep(0)   # enqueue before cancelling
                doomed.cancel()
                survivor = await asyncio.wait_for(
                    batcher.submit("alive"), timeout=5)
                with pytest.raises(asyncio.CancelledError):
                    await doomed
            finally:
                await batcher.stop()
            assert survivor == "alive"
            assert all("doomed" not in batch for batch in seen)

        asyncio.run(run())

    def test_handler_exception_rejects_batch_but_batcher_survives(self):
        async def run():
            calls = []

            async def handler(items):
                calls.append(list(items))
                if "bad" in items:
                    raise RuntimeError("boom")
                return list(items)

            batcher = MicroBatcher(handler, max_batch=1, max_wait=0.0)
            batcher.start()
            try:
                with pytest.raises(RuntimeError, match="boom"):
                    await batcher.submit("bad")
                assert await batcher.submit("good") == "good"
            finally:
                await batcher.stop()

        asyncio.run(run())

    def test_result_length_mismatch_is_an_error(self):
        async def run():
            async def handler(items):
                return []  # wrong arity

            batcher = MicroBatcher(handler, max_batch=1, max_wait=0.0)
            batcher.start()
            try:
                with pytest.raises(RuntimeError, match="returned 0 results"):
                    await batcher.submit("x")
            finally:
                await batcher.stop()

        asyncio.run(run())

    def test_submit_requires_running_batcher(self):
        async def run():
            async def handler(items):
                return list(items)

            batcher = MicroBatcher(handler)
            with pytest.raises(RuntimeError, match="not running"):
                await batcher.submit(1)

        asyncio.run(run())

    def test_stop_rejects_pending(self):
        async def run():
            started = asyncio.Event()

            async def handler(items):
                started.set()
                await asyncio.sleep(30)
                return list(items)

            batcher = MicroBatcher(handler, max_batch=1, max_wait=0.0)
            batcher.start()
            pending = asyncio.ensure_future(batcher.submit("x"))
            await started.wait()
            await batcher.stop()
            with pytest.raises(RuntimeError, match="stopped"):
                await pending

        asyncio.run(run())


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_parse_request_rejects_non_json(self):
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_request(b"{nope")

    def test_parse_request_rejects_non_object(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_request(b"[1, 2]")

    def test_parse_solve_requires_circuit(self):
        with pytest.raises(ProtocolError, match="circuit"):
            parse_solve({"op": "solve"})

    def test_parse_solve_rejects_unknown_method(self):
        with pytest.raises(ProtocolError, match="unknown method"):
            parse_solve({"circuit": "ota1", "method": "magic"})

    def test_parse_solve_rejects_bool_seed(self):
        with pytest.raises(ProtocolError, match="seed"):
            parse_solve({"circuit": "ota1", "seed": True})

    def test_parse_solve_defaults(self):
        req = parse_solve({"circuit": "ota1"})
        assert req.method == "rl"
        assert req.seed == 0
        assert req.deterministic is True
        assert req.attempts == 8

    def test_task_spec_keys_on_netlist_and_agent(self):
        circuit = get_circuit("ota_small")
        req = SolveRequest(circuit="ota_small", seed=1)
        a = req.task_spec(circuit, "agentA").content_hash()
        b = req.task_spec(circuit, "agentB").content_hash()
        assert a != b  # retrained agent -> different key
        edited = circuit.with_constraints([])
        c = req.task_spec(edited, "agentA").content_hash()
        assert a != c  # edited netlist -> different key

    def test_circuit_fingerprint_stable_per_content(self):
        a = circuit_fingerprint(get_circuit("ota_small"))
        b = circuit_fingerprint(get_circuit("ota_small"))
        assert a == b
        assert a != circuit_fingerprint(get_circuit("bias_small"))


# ---------------------------------------------------------------------------
# Per-row batched act (the sampling contract behind coalescing)
# ---------------------------------------------------------------------------

class TestPerRowAct:
    def test_batched_act_matches_batch_of_one_per_row(self):
        """Row i of a coalesced act call must equal a batch-of-one call
        with the same generator — batch composition cannot leak."""
        agent = small_agent()
        env_a = agent_fixture_env("ota_small")
        env_b = agent_fixture_env("bias_small")
        obs = [env_a.reset(), env_b.reset(), env_a.reset()]

        batched, _, _ = agent.ppo.act(
            obs,
            deterministic=np.array([False, True, False]),
            rng=[np.random.default_rng(7), np.random.default_rng(0),
                 np.random.default_rng(11)],
        )
        singles = []
        for o, det, seed in zip(obs, (False, True, False), (7, 0, 11)):
            actions, _, _ = agent.ppo.act(
                [o], deterministic=det, rng=np.random.default_rng(seed))
            singles.append(int(actions[0]))
        assert [int(a) for a in batched] == singles

    def test_scalar_call_unchanged(self):
        agent = small_agent()
        env = agent_fixture_env("ota_small")
        obs = env.reset()
        a, _, _ = agent.ppo.act([obs], deterministic=True)
        b, _, _ = agent.ppo.act([obs], deterministic=True)
        assert int(a[0]) == int(b[0])


def agent_fixture_env(name):
    from repro.floorplan import FloorplanEnv

    return FloorplanEnv(get_circuit(name))


# ---------------------------------------------------------------------------
# Live server (ephemeral ports throughout)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def server():
    config = ServeConfig(max_batch=4, max_wait_ms=2.0, backend="serial",
                         cache=False)
    with ServerThread(config, agent=small_agent()) as handle:
        yield handle


class TestSolveServer:
    def test_ping(self, server):
        with SolveClient(server.address) as client:
            response = client.ping()
            assert response["pong"] is True
            assert response["version"] == 1

    def test_solve_returns_floorplan(self, server):
        with SolveClient(server.address) as client:
            response = client.solve("ota_small", seed=0)
            result = response["result"]
            assert result["circuit_name"] == get_circuit("ota_small").name
            assert result["method"] == "R-GCN RL"
            assert len(result["rects"]) == 3
            assert result["area"] > 0
            assert response["cached"] is False

    def test_malformed_request_error_without_killing_server(self, server):
        with SolveClient(server.address) as client:
            bad = client.request({"op": "solve"})   # missing circuit
            assert bad["ok"] is False and "circuit" in bad["error"]
            worse = client.request({"op": "wat"})
            assert worse["ok"] is False and "unknown op" in worse["error"]
            # raw garbage on the same connection
            client._sock.sendall(b"{not json}\n")
            raw = json.loads(client._file.readline())
            assert raw["ok"] is False
            # the connection AND the server still work afterwards
            assert client.ping()["pong"] is True

    def test_unknown_circuit_is_a_request_error(self, server):
        with SolveClient(server.address) as client:
            response = client.request({"op": "solve", "circuit": "nope"})
            assert response["ok"] is False
            assert "unknown circuit" in response["error"]

    def test_request_id_echoed(self, server):
        with SolveClient(server.address) as client:
            response = client.request({"op": "ping", "id": "req-17"})
            assert response["id"] == "req-17"

    def test_client_disconnect_mid_flight_does_not_kill_server(self, server):
        # Fire a solve and slam the connection shut before the answer.
        sock = socket.create_connection(server.address, timeout=30)
        sock.sendall(b'{"op": "solve", "circuit": "bias_small", "seed": 9}\n')
        sock.close()
        with SolveClient(server.address) as client:
            assert client.ping()["pong"] is True
            assert client.solve("ota_small", seed=1)["result"]["area"] > 0

    def test_stats_op_reports_counters_and_histograms(self, server):
        with SolveClient(server.address) as client:
            client.solve("ota_small", seed=0)
            stats = client.stats()
            assert stats["requests"] >= 1
            assert stats["latency"]["count"] >= 1
            assert "p99" in stats["latency"]
            assert stats["batched_steps"] >= 1

    def test_concurrent_clients(self, server):
        results = {}

        def work(seed):
            with SolveClient(server.address) as client:
                results[seed] = client.solve(
                    "bias_small", seed=seed, deterministic=False)["result"]

        threads = [threading.Thread(target=work, args=(s,)) for s in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(results) == list(range(6))
        assert all(r["area"] > 0 for r in results.values())


class TestServeCache:
    def test_warm_cache_repeats_answer_without_recompute(self, tmp_path):
        config = ServeConfig(max_batch=4, max_wait_ms=2.0, backend="serial",
                             cache=True, cache_dir=str(tmp_path))
        with ServerThread(config, agent=small_agent()) as handle:
            with SolveClient(handle.address) as client:
                cold = client.solve("ota_small", seed=3)
                assert cold["cached"] is False
                steps_after_cold = handle.server._batcher.items_dispatched
                warm = client.solve("ota_small", seed=3)
                assert warm["cached"] is True
                assert warm["result"] == cold["result"]
                assert warm["seconds"] == cold["seconds"]  # replayed timing
                # no policy step ran for the warm request
                assert handle.server._batcher.items_dispatched == steps_after_cold
                stats = client.stats()
                assert stats["cache_hits"] == 1

    def test_cache_survives_server_restart(self, tmp_path):
        config = ServeConfig(backend="serial", cache=True,
                             cache_dir=str(tmp_path))
        with ServerThread(config, agent=small_agent()) as first:
            with SolveClient(first.address) as client:
                cold = client.solve("ota_small", seed=5)
        with ServerThread(config, agent=small_agent()) as second:
            with SolveClient(second.address) as client:
                warm = client.solve("ota_small", seed=5)
        assert warm["cached"] is True
        assert warm["result"] == cold["result"]

    def test_identical_inflight_requests_coalesce(self, tmp_path):
        """Single-flight: N identical cold requests -> one compute."""
        config = ServeConfig(max_batch=4, max_wait_ms=2.0, backend="serial",
                             cache=True, cache_dir=str(tmp_path))
        results = []
        with ServerThread(config, agent=small_agent()) as handle:
            def work():
                with SolveClient(handle.address) as client:
                    results.append(client.solve("bias_small", seed=2))

            threads = [threading.Thread(target=work) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert len(results) == 4
        reference = results[0]["result"]
        assert all(r["result"] == reference for r in results)
        # exactly one entry was computed and written
        assert sum(1 for r in results if not r["cached"]
                   and not r["coalesced"]) == 1


class TestServeBaselines:
    def test_baseline_method_served(self, server):
        with SolveClient(server.address) as client:
            response = client.solve(
                "ota_small", method="sa", seed=0,
                config={"moves_per_temperature": 4})
            assert response["result"]["method"] == "SA"
            assert response["result"]["area"] > 0
