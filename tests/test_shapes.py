"""Tests for multi-shape configuration and internal placement."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import StructureType, get_circuit, nmos
from repro.circuits.blocks import FunctionalBlock
from repro.shapes import (
    PlacementStyle,
    ShapeSet,
    block_shapes,
    common_centroid_pattern,
    configure_circuit,
    interdigitated_pattern,
    internal_placement,
    internal_routing_length,
    row_pattern,
)


class TestPatterns:
    def test_common_centroid_abba(self):
        assert common_centroid_pattern(2, 2) == "ABBA"

    def test_common_centroid_mirror_symmetric(self):
        for nd, sp in [(2, 2), (2, 4), (3, 2)]:
            p = common_centroid_pattern(nd, sp)
            # centroid property: pattern reads the same reversed for even totals
            if len(p) % 2 == 0:
                assert p == p[::-1]

    def test_interdigitated_abab(self):
        assert interdigitated_pattern(2, 2) == "ABAB"

    def test_row_pattern(self):
        assert row_pattern(2, 3) == "AAABBB"

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_patterns_conserve_stripe_count(self, nd, sp):
        for fn in (interdigitated_pattern, row_pattern):
            assert len(fn(nd, sp)) == nd * sp
        assert len(common_centroid_pattern(nd, sp)) == nd * sp

    @given(st.integers(min_value=2, max_value=4), st.integers(min_value=2, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_patterns_use_all_devices(self, nd, sp):
        labels = {chr(ord("A") + d) for d in range(nd)}
        assert set(interdigitated_pattern(nd, sp)) == labels
        assert set(row_pattern(nd, sp)) == labels


class TestInternalPlacement:
    def _matched_block(self, stripes=2):
        return FunctionalBlock("DP", StructureType.DIFFERENTIAL_PAIR, [
            nmos("N1", 8.0, 0.5, stripes=stripes, D="A", G="IP", S="T"),
            nmos("N2", 8.0, 0.5, stripes=stripes, D="B", G="IN", S="T"),
        ])

    def test_matched_even_stripes_get_common_centroid(self):
        p = internal_placement(self._matched_block(stripes=2), rows=1)
        assert p.style is PlacementStyle.COMMON_CENTROID

    def test_matched_odd_stripes_get_interdigitated(self):
        p = internal_placement(self._matched_block(stripes=3), rows=1)
        assert p.style is PlacementStyle.INTERDIGITATED

    def test_unmatched_gets_row(self):
        b = FunctionalBlock("I", StructureType.INVERTER, [nmos("N", 2, 0.5)])
        assert internal_placement(b, rows=1).style is PlacementStyle.ROW

    def test_stripe_grid_serpentine(self):
        p = internal_placement(self._matched_block(stripes=2), rows=2)
        grid = p.stripe_grid()
        assert len(grid) == 2
        flat_forward = grid[0] + grid[1][::-1]
        assert "".join(flat_forward) == p.pattern

    def test_interdigitated_routing_shorter_than_row_for_pairs(self):
        """ABAB keeps same-device stripes closer than AABB overall? No -
        row keeps them adjacent. Common-centroid costs the most wiring."""
        pitch = 1.0
        cc = internal_placement(self._matched_block(2), 1, PlacementStyle.COMMON_CENTROID)
        row = internal_placement(self._matched_block(2), 1, PlacementStyle.ROW)
        assert internal_routing_length(cc, pitch) >= internal_routing_length(row, pitch)


class TestShapeVariants:
    def test_three_variants_equal_area(self):
        ckt = get_circuit("ota1")
        for shape_set in configure_circuit(ckt):
            areas = [v.area for v in shape_set]
            assert len(areas) == 3
            assert np.allclose(areas, areas[0])

    def test_variant_area_matches_block_area(self):
        ckt = get_circuit("ota2")
        for block, shape_set in zip(ckt.blocks, configure_circuit(ckt)):
            assert shape_set[0].area == pytest.approx(block.area)

    def test_aspect_ratios_increase(self):
        ckt = get_circuit("bias1")
        for shape_set in configure_circuit(ckt):
            aspects = [v.aspect for v in shape_set]
            assert aspects == sorted(aspects)
            assert aspects[0] < aspects[-1]

    def test_matched_blocks_biased_wide(self):
        dp_block = get_circuit("ota1").blocks[0]  # DP, matched
        shapes = block_shapes(dp_block)
        assert all(v.aspect >= 1.0 - 1e-9 for v in shapes)

    def test_shape_set_index_and_iter(self):
        shapes = block_shapes(get_circuit("ota1").blocks[0])
        assert shapes[0] is shapes.variants[0]
        assert len(list(shapes)) == 3

    def test_wrong_variant_count_rejected(self):
        shapes = block_shapes(get_circuit("ota1").blocks[0])
        with pytest.raises(ValueError):
            ShapeSet("X", shapes.variants[:2])

    def test_internal_wire_nonnegative(self):
        for shape_set in configure_circuit(get_circuit("driver")):
            for v in shape_set:
                assert v.internal_wire >= 0
