"""Tests for the SPICE I/O, SVG export, and markdown report modules."""

import numpy as np
import pytest

from repro.baselines import SAConfig, simulated_annealing
from repro.circuits import DeviceType, get_circuit
from repro.circuits.spice import parse_spice, roundtrip_devices, write_spice
from repro.experiments.report import table1_markdown, table2_markdown
from repro.experiments.table1 import Table1Cell
from repro.experiments.table2 import Table2Row
from repro.layout import generate_layout
from repro.layout.svg import floorplan_svg, layout_svg
from repro.routing import detailed_route, route_circuit
from repro.sr import recognize_rules


class TestSpiceParse:
    def test_parse_mos_card(self):
        devices = parse_spice("M1 out in vss vss nch W=10u L=0.5u M=2")
        d = devices[0]
        assert d.dtype is DeviceType.NMOS
        assert d.width == pytest.approx(10.0)
        assert d.length == pytest.approx(0.5)
        assert d.stripes == 2
        assert d.terminals == {"D": "out", "G": "in", "S": "vss", "B": "vss"}

    def test_parse_pmos_model(self):
        devices = parse_spice("M2 a b vdd vdd pch W=4u L=1u")
        assert devices[0].dtype is DeviceType.PMOS

    def test_parse_resistor_and_capacitor(self):
        text = """
        R1 a vss 10k W=1u L=40u M=4
        C1 out vss 900f
        """
        devices = parse_spice(text)
        assert devices[0].dtype is DeviceType.RESISTOR
        assert devices[0].stripes == 4
        assert devices[1].dtype is DeviceType.CAPACITOR
        assert devices[1].width == pytest.approx(900.0)  # fF

    def test_comments_and_subckt_ignored(self):
        text = """* comment
        .subckt ota in out vss vdd
        M1 out in vss vss nch W=2u L=0.5u
        .ends
        """
        assert len(parse_spice(text)) == 1

    def test_unsupported_card_raises(self):
        with pytest.raises(ValueError):
            parse_spice("X1 a b mysub")

    def test_missing_wl_raises(self):
        with pytest.raises(ValueError):
            parse_spice("M1 d g s b nch")

    def test_value_units(self):
        devices = parse_spice("C1 a b 1.5p")
        assert devices[0].width == pytest.approx(1500.0)  # 1.5 pF in fF


class TestSpiceRoundtrip:
    @pytest.mark.parametrize("name", ["ota_small", "ota2", "bias1"])
    def test_roundtrip_preserves_devices(self, name):
        circuit = get_circuit(name)
        original = [d for b in circuit.blocks for d in b.devices]
        parsed = roundtrip_devices(circuit)
        assert len(parsed) == len(original)
        by_name = {d.name: d for d in parsed}
        for d in original:
            p = by_name[d.name]
            assert p.dtype is d.dtype
            assert p.width == pytest.approx(d.width, rel=1e-6)
            assert p.stripes == d.stripes
            assert p.terminals == d.terminals

    def test_roundtrip_supports_structure_recognition(self):
        """Parsed netlists feed SR exactly like in-memory circuits."""
        circuit = get_circuit("ota_small")
        devices = roundtrip_devices(circuit)
        blocks = recognize_rules(devices)
        structures = {b.structure.name for b in blocks}
        assert "DIFFERENTIAL_PAIR" in structures

    def test_write_contains_ports_and_blocks(self):
        text = write_spice(get_circuit("ota_small"))
        assert ".subckt" in text and ".ends" in text
        assert "* block DP" in text


@pytest.fixture(scope="module")
def placed():
    ckt = get_circuit("ota_small")
    result = simulated_annealing(ckt, SAConfig(moves_per_temperature=8,
                                               cooling=0.8, seed=0))
    return ckt, result.rects


class TestSVG:
    def test_floorplan_svg_structure(self, placed):
        ckt, rects = placed
        svg = floorplan_svg(ckt, rects)
        assert svg.startswith("<svg")
        assert svg.count("<rect") == len(rects)
        assert "DP" in svg  # block label

    def test_floorplan_svg_with_routing(self, placed):
        ckt, rects = placed
        route = route_circuit(ckt, rects)
        svg = floorplan_svg(ckt, rects, route=route)
        assert "<line" in svg

    def test_layout_svg(self, placed):
        ckt, rects = placed
        detail = detailed_route(route_circuit(ckt, rects))
        layout = generate_layout(ckt, rects, routing=detail)
        svg = layout_svg(layout)
        assert svg.count("<rect") >= len(layout.shapes) - 1
        assert "</svg>" in svg

    def test_empty_placement_rejected(self, placed):
        ckt, _ = placed
        with pytest.raises(ValueError):
            floorplan_svg(ckt, [])


def _cell(circuit, method, reward):
    return Table1Cell(circuit=circuit, num_blocks=5, unseen=False, method=method,
                      runtime=(1.0, 0.1), dead_space=(40.0, 2.0),
                      hpwl=(100.0, 5.0), reward=(reward, 0.2))


class TestReports:
    def test_table1_markdown_marks_best(self):
        cells = [_cell("OTA-1", "SA", -2.0), _cell("OTA-1", "R-GCN RL 0-shot", -1.0)]
        md = table1_markdown(cells)
        assert "### OTA-1" in md
        assert "**(best)**" in md
        assert md.index("R-GCN RL 0-shot") < md.index("| SA")

    def test_table2_markdown_deltas(self):
        rows = [
            Table2Row("OTA", "Ours", 200.0, 30.0, 100.0, 0.1, 0.13),
            Table2Row("OTA", "Manual", 250.0, 32.0, None, None, 8.0),
        ]
        md = table2_markdown(rows)
        assert "-20.0% area" in md
        assert "| OTA | Manual |" in md
