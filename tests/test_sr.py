"""Tests for structure recognition: k-means, rules, GCN classifier."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import StructureType, get_circuit, nmos, pmos, resistor
from repro.sr import (
    SRClassifier,
    device_adjacency,
    device_features,
    kmeans,
    library_sr_dataset,
    recognize_rules,
    train_sr_classifier,
)


class TestKMeans:
    def test_separated_blobs(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.1, size=(20, 2))
        b = rng.normal(5, 0.1, size=(20, 2))
        points = np.vstack([a, b])
        result = kmeans(points, 2, rng=rng)
        labels_a = set(result.labels[:20])
        labels_b = set(result.labels[20:])
        assert len(labels_a) == 1 and len(labels_b) == 1
        assert labels_a != labels_b

    def test_k_equals_n(self):
        points = np.array([[0.0, 0], [1, 1], [2, 2]])
        result = kmeans(points, 3, rng=np.random.default_rng(0))
        assert sorted(result.labels.tolist()) == [0, 1, 2]
        assert result.inertia == pytest.approx(0.0)

    def test_invalid_k(self):
        points = np.zeros((3, 2))
        with pytest.raises(ValueError):
            kmeans(points, 0)
        with pytest.raises(ValueError):
            kmeans(points, 4)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2)

    @given(st.integers(min_value=1, max_value=5), st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_all_clusters_used(self, k, seed):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(20, 3))
        result = kmeans(points, k, rng=rng)
        assert len(set(result.labels.tolist())) == k


class TestDeviceGraph:
    def test_adjacency_from_shared_nets(self):
        devices = [
            nmos("A", 1, 0.5, D="X", G="I", S="VSS"),
            nmos("B", 1, 0.5, D="O", G="X", S="VSS"),
            nmos("C", 1, 0.5, D="Z", G="W", S="VSS"),
        ]
        adj = device_adjacency(devices)
        assert adj[0, 1] == 1
        assert adj[0, 2] == 0  # only shares VSS (supply, excluded)

    def test_feature_dim(self):
        devices = [nmos("A", 1, 0.5, D="X", G="I", S="VSS"),
                   resistor("R", 1, 10, P="X", N="VSS")]
        feats = device_features(devices)
        assert feats.shape == (2, 9)

    def test_diode_connection_flag(self):
        devices = [nmos("A", 1, 0.5, D="X", G="X", S="VSS"),
                   nmos("B", 1, 0.5, D="Y", G="X", S="VSS")]
        feats = device_features(devices)
        assert feats[0, -1] == 1.0
        assert feats[1, -1] == 0.0


class TestRuleRecognizer:
    def test_detects_differential_pair(self):
        devices = [
            nmos("N1", 10, 0.5, D="A", G="INP", S="TAIL"),
            nmos("N2", 10, 0.5, D="B", G="INN", S="TAIL"),
        ]
        blocks = recognize_rules(devices)
        assert len(blocks) == 1
        assert blocks[0].structure is StructureType.DIFFERENTIAL_PAIR

    def test_detects_current_mirror(self):
        devices = [
            pmos("P1", 10, 1.0, D="BIAS", G="BIAS", S="VDD"),
            pmos("P2", 10, 1.0, D="OUT", G="BIAS", S="VDD"),
        ]
        blocks = recognize_rules(devices)
        assert blocks[0].structure is StructureType.SIMPLE_CURRENT_MIRROR

    def test_detects_inverter(self):
        devices = [
            nmos("N1", 4, 0.35, D="OUT", G="IN", S="VSS"),
            pmos("P1", 8, 0.35, D="OUT", G="IN", S="VDD"),
        ]
        blocks = recognize_rules(devices)
        assert blocks[0].structure is StructureType.INVERTER

    def test_leftover_types(self):
        devices = [
            resistor("R1", 1, 20, P="A", N="VSS"),
            nmos("N1", 4, 0.5, D="B", G="C", S="VSS"),
        ]
        blocks = recognize_rules(devices)
        structures = {b.structure for b in blocks}
        assert StructureType.BIAS_RESISTOR in structures
        assert StructureType.SINGLE_DEVICE in structures

    def test_each_device_in_one_block(self):
        ckt = get_circuit("ota2")
        devices = [d for b in ckt.blocks for d in b.devices]
        blocks = recognize_rules(devices)
        names = [n for b in blocks for n in b.device_names]
        assert sorted(names) == sorted(d.name for d in devices)

    def test_recovers_ota_mirror_and_pair(self):
        """On the Fig. 2-style OTA the rules must find the DP and the CM."""
        ckt = get_circuit("ota_small")
        devices = [d for b in ckt.blocks for d in b.devices]
        blocks = recognize_rules(devices)
        structures = [b.structure for b in blocks]
        assert StructureType.DIFFERENTIAL_PAIR in structures
        assert StructureType.SIMPLE_CURRENT_MIRROR in structures


class TestSRClassifier:
    @pytest.fixture(scope="class")
    def trained(self):
        classifier = SRClassifier(rng=np.random.default_rng(0))
        samples = library_sr_dataset(["ota_small", "ota1", "bias_small"])
        result = train_sr_classifier(classifier, samples, epochs=40,
                                     rng=np.random.default_rng(0))
        return classifier, result

    def test_training_reduces_loss(self, trained):
        _, result = trained
        assert result.losses[-1] < result.losses[0]

    def test_training_accuracy_beats_chance(self, trained):
        _, result = trained
        assert result.accuracy > 0.4  # 28-way classification; chance ~ 0.04

    def test_recognize_groups_all_devices(self, trained):
        classifier, _ = trained
        ckt = get_circuit("ota1")
        devices = [d for b in ckt.blocks for d in b.devices]
        blocks = classifier.recognize(devices, num_blocks=ckt.num_blocks)
        assert len(blocks) == ckt.num_blocks
        names = [n for b in blocks for n in b.device_names]
        assert sorted(names) == sorted(d.name for d in devices)

    def test_recognize_validates_num_blocks(self, trained):
        classifier, _ = trained
        devices = [nmos("A", 1, 0.5, D="X", G="Y", S="VSS")]
        with pytest.raises(ValueError):
            classifier.recognize(devices, num_blocks=5)

    def test_empty_dataset_rejected(self):
        classifier = SRClassifier()
        with pytest.raises(ValueError):
            train_sr_classifier(classifier, [])
