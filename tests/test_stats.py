"""Unit tests for the hardened experiment statistics helpers."""

import math

import numpy as np
import pytest

from repro.experiments.stats import format_cell, interquartile_mean, iqm_and_std


class TestInterquartileMean:
    def test_empty_returns_zero(self):
        assert interquartile_mean([]) == 0.0

    def test_all_nan_returns_zero(self):
        assert interquartile_mean([float("nan"), float("nan")]) == 0.0

    def test_never_nan(self):
        for values in ([], [float("nan")], [float("inf")], [1.0], [1.0, 2.0]):
            assert math.isfinite(interquartile_mean(values))

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_small_samples_fall_back_to_mean(self, n):
        values = list(range(1, n + 1))
        assert interquartile_mean(values) == pytest.approx(np.mean(values))

    def test_nan_samples_dropped(self):
        assert interquartile_mean([1.0, float("nan"), 3.0]) == pytest.approx(2.0)

    def test_inf_samples_dropped(self):
        assert interquartile_mean([1.0, float("inf"), 3.0]) == pytest.approx(2.0)

    def test_trims_outliers_with_enough_samples(self):
        values = [1.0] * 10 + [1000.0]
        assert interquartile_mean(values) == pytest.approx(1.0)

    def test_accepts_numpy_arrays(self):
        assert interquartile_mean(np.array([2.0, 4.0])) == pytest.approx(3.0)


class TestIqmAndStd:
    def test_empty_returns_zero_pair(self):
        assert iqm_and_std([]) == (0.0, 0.0)

    def test_single_sample(self):
        mean, std = iqm_and_std([5.0])
        assert mean == 5.0 and std == 0.0

    def test_nan_filtered_before_std(self):
        mean, std = iqm_and_std([2.0, float("nan"), 2.0])
        assert mean == 2.0 and std == 0.0

    def test_matches_numpy_for_clean_input(self):
        values = [1.0, 2.0, 3.0, 4.0]
        mean, std = iqm_and_std(values)
        assert std == pytest.approx(np.std(values))
        assert mean == pytest.approx(2.5)


class TestFormatCell:
    def test_format(self):
        assert format_cell(1.234, 0.567) == "1.23±0.57"
        assert format_cell(1.2, 0.5, digits=1) == "1.2±0.5"
