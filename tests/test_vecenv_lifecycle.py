"""ProcessVecEnv lifecycle: context manager, close(), and terminate-on-gc.

Regression for the worker-leak bug: callers that forget ``close()`` must
not leave orphaned worker processes behind — a finalizer tears the
workers down when the env is garbage collected (and, via the finalizer
registry, at interpreter exit).
"""

import gc
import time

import numpy as np
import pytest

from repro.circuits import get_circuit
from repro.floorplan import ProcessVecEnv


def _wait_dead(procs, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not any(p.is_alive() for p in procs):
            return True
        time.sleep(0.05)
    return not any(p.is_alive() for p in procs)


@pytest.fixture(scope="module")
def circuit():
    return get_circuit("ota_small")


class TestProcessVecEnvLifecycle:
    def test_context_manager_reaps_workers(self, circuit):
        with ProcessVecEnv([circuit]) as venv:
            procs = list(venv._procs)
            obs = venv.reset()
            assert len(obs) == 1
            assert all(p.is_alive() for p in procs)
        assert _wait_dead(procs)

    def test_unclosed_env_reaped_on_gc(self, circuit):
        """Deliberately un-closed env: dropping the last reference must
        terminate the workers."""
        venv = ProcessVecEnv([circuit])
        venv.reset()
        procs = list(venv._procs)
        assert all(p.is_alive() for p in procs)
        del venv
        gc.collect()
        assert _wait_dead(procs)

    def test_close_is_idempotent(self, circuit):
        venv = ProcessVecEnv([circuit])
        procs = list(venv._procs)
        venv.close()
        venv.close()
        assert _wait_dead(procs)

    def test_closed_env_rejects_use(self, circuit):
        venv = ProcessVecEnv([circuit])
        venv.close()
        with pytest.raises(RuntimeError):
            venv.reset()
        with pytest.raises(RuntimeError):
            venv.step([0])
        with pytest.raises(RuntimeError):
            venv.set_circuits([circuit])

    def test_step_after_close_does_not_hang(self, circuit):
        venv = ProcessVecEnv([circuit])
        obs = venv.reset()
        valid = np.flatnonzero(obs[0].action_mask)
        venv.step([int(valid[0])])
        venv.close()
        with pytest.raises(RuntimeError):
            venv.step([int(valid[0])])
